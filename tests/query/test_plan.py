"""Unit tests for the logical-plan IR (canonical hashing, SQL routing)."""

from __future__ import annotations

import pytest

from repro.dataset.schema import ColumnRef, ForeignKey
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import (
    Exists,
    Filter,
    Join,
    PredicateSpec,
    Project,
    Scan,
    edge_key,
    join_prefix_key,
    logical_plan_for_query,
)
from repro.query.sql import plan_to_sql, to_sql

EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")

TWO_TABLE = ProjectJoinQuery(
    (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
    (EMP_DEPT,),
)


class TestPlanConstruction:
    def test_single_table_plan_is_project_over_scan(self):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        plan = logical_plan_for_query(query)
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Scan)
        assert plan.tables == frozenset({"Employee"})

    def test_join_plan_contains_every_edge_and_table(self):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        plan = logical_plan_for_query(query)
        assert set(plan.edges()) == {EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ}
        assert plan.tables == frozenset(
            {"Department", "Employee", "Assignment", "Project"}
        )

    def test_predicates_are_pushed_onto_their_scan(self):
        spec = PredicateSpec("Employee", "Name", tag="= Alice")
        plan = logical_plan_for_query(TWO_TABLE, (spec,))
        filters = [node for node in plan.walk() if isinstance(node, Filter)]
        assert len(filters) == 1
        assert isinstance(filters[0].child, Scan)
        assert filters[0].child.table == "Employee"
        assert plan.predicates() == (spec,)

    def test_exists_wrapper(self):
        plan = logical_plan_for_query(TWO_TABLE, exists=True)
        assert isinstance(plan, Exists)
        assert isinstance(plan.child, Project)


class TestCanonicalHashing:
    def test_edge_key_is_symmetric(self):
        flipped = ForeignKey("Department", "Name", "Employee", "Department")
        assert edge_key(EMP_DEPT) == edge_key(flipped)

    def test_same_join_different_edge_order_hashes_equal(self):
        forward = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        backward = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (ASSIGN_PROJ, ASSIGN_EMP, EMP_DEPT),
        )
        forward_plan = logical_plan_for_query(forward)
        backward_plan = logical_plan_for_query(backward)
        assert (
            forward_plan.child.canonical_key()
            == backward_plan.child.canonical_key()
        )

    def test_projections_do_not_affect_the_join_subtree_key(self):
        other = ProjectJoinQuery(
            (ColumnRef("Department", "Budget"), ColumnRef("Employee", "Salary")),
            (EMP_DEPT,),
        )
        ours = logical_plan_for_query(TWO_TABLE)
        theirs = logical_plan_for_query(other)
        assert ours.child.canonical_key() == theirs.child.canonical_key()
        # The Project wrappers themselves do differ.
        assert ours.canonical_key() != theirs.canonical_key()

    def test_filters_change_the_key(self):
        bare = logical_plan_for_query(TWO_TABLE)
        filtered = logical_plan_for_query(
            TWO_TABLE, (PredicateSpec("Employee", "Name", tag="x"),)
        )
        assert bare.canonical_key() != filtered.canonical_key()

    def test_join_prefix_key_ignores_projections_and_edge_order(self):
        other = ProjectJoinQuery(
            (ColumnRef("Employee", "Salary"),),
            (EMP_DEPT,),
        )
        assert join_prefix_key(TWO_TABLE) == join_prefix_key(other)
        single = ProjectJoinQuery((ColumnRef("Employee", "Salary"),))
        assert join_prefix_key(TWO_TABLE) != join_prefix_key(single)


class TestPlanSql:
    def test_to_sql_is_routed_through_the_plan(self):
        assert plan_to_sql(logical_plan_for_query(TWO_TABLE)) == to_sql(TWO_TABLE)

    def test_single_table_sql_is_stable(self):
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Name"), ColumnRef("Employee", "Salary"))
        )
        assert to_sql(query) == (
            "SELECT Employee.Name, Employee.Salary FROM Employee"
        )

    def test_join_sql_lists_tables_sorted_and_edges_in_join_order(self):
        sql = to_sql(
            ProjectJoinQuery(
                (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
                (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
            )
        )
        assert "FROM Assignment, Department, Employee, Project" in sql
        assert sql.count(" = ") == 3

    def test_plan_without_project_is_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            plan_to_sql(Scan("Employee"))


class TestWalkHelpers:
    def test_walk_visits_every_node_once(self):
        plan = logical_plan_for_query(
            ProjectJoinQuery(
                (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
                (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
            ),
            (PredicateSpec("Project", "Title", tag="t"),),
            exists=True,
        )
        nodes = list(plan.walk())
        assert len(nodes) == len(set(id(node) for node in nodes))
        kinds = {type(node).__name__ for node in nodes}
        assert kinds == {"Exists", "Project", "Join", "Filter", "Scan"}
