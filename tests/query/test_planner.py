"""Unit tests for the cost-based planner (ordering, estimates, prefixes)."""

from __future__ import annotations

import pytest

from repro.dataset.catalog import MetadataCatalog
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import (
    Filter,
    Join,
    PredicateSpec,
    Project,
    Scan,
    logical_plan_for_query,
)
from repro.query.planner import DEFAULT_FILTER_SELECTIVITY, Planner

EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")

TWO_TABLE = ProjectJoinQuery(
    (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
    (EMP_DEPT,),
)
FOUR_TABLE = ProjectJoinQuery(
    (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
    (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
)


@pytest.fixture()
def planner(company_db):
    return Planner(company_db, MetadataCatalog.build(company_db))


@pytest.fixture()
def statless_planner(company_db):
    return Planner(company_db)


class TestCardinalities:
    def test_scan_estimate_matches_row_count(self, planner, company_db):
        assert planner.estimated_rows(Scan("Employee")) == 6
        assert planner.estimated_rows(Scan("Department")) == 4

    def test_filter_discounts_by_distinct_count(self, planner):
        # Employee.Name has 6 distinct values over 6 rows.
        filtered = Filter(
            Scan("Employee"), (PredicateSpec("Employee", "Name", tag="x"),)
        )
        assert planner.estimated_rows(filtered) == pytest.approx(1.0)

    def test_filter_without_stats_uses_default_selectivity(self, statless_planner):
        filtered = Filter(
            Scan("Employee"), (PredicateSpec("Employee", "Name", tag="x"),)
        )
        assert statless_planner.estimated_rows(filtered) == pytest.approx(
            6 * DEFAULT_FILTER_SELECTIVITY
        )

    def test_join_estimate_uses_containment_assumption(self, company_db):
        # With sketches disabled the estimate is the classic containment
        # model: 6 * 4 / max(d(Employee.Department)=4, d(Department.Name)=4).
        raw_planner = Planner(
            company_db, MetadataCatalog.build(company_db), use_sketches=False
        )
        join = Join(Scan("Employee"), Scan("Department"), EMP_DEPT)
        assert raw_planner.estimated_rows(join) == pytest.approx(6.0)

    def test_sketch_join_estimate_close_to_containment(self, planner):
        # The default (sketch-informed) planner replaces the containment
        # denominator with HLL distinct estimates; on tiny exact-ish
        # columns it must land within HLL error of the raw model.
        join = Join(Scan("Employee"), Scan("Department"), EMP_DEPT)
        assert planner.estimated_rows(join) == pytest.approx(6.0, rel=0.05)

    def test_project_and_exists_are_transparent(self, planner):
        plan = logical_plan_for_query(TWO_TABLE, exists=True)
        assert planner.estimated_rows(plan) == planner.estimated_rows(plan.child)


class TestJoinOrdering:
    def test_starts_from_the_smallest_input(self, planner):
        order = planner.join_order(TWO_TABLE)
        assert order.start_table == "Department"
        assert order.edges == (EMP_DEPT,)

    def test_filtered_table_becomes_the_start(self, planner):
        plan = planner.plan_query(
            TWO_TABLE, (PredicateSpec("Employee", "Name", tag="x"),)
        )
        # The filtered Employee side (~1 row) is now cheaper than the
        # 4-row Department scan, so it anchors the join.
        body = plan.child if isinstance(plan, Project) else plan
        assert isinstance(body, Join)
        left = body.left
        assert isinstance(left, Filter)
        assert left.child.table == "Employee"

    def test_four_table_order_is_connected(self, planner):
        order = planner.join_order(FOUR_TABLE)
        joined = {order.start_table}
        for edge in order.edges:
            left, right = edge.tables()
            assert left in joined or right in joined
            joined.update((left, right))
        assert joined == {"Department", "Employee", "Assignment", "Project"}

    def test_order_is_deterministic(self, planner):
        first = planner.join_order(FOUR_TABLE)
        second = planner.join_order(FOUR_TABLE)
        assert first.start_table == second.start_table
        assert first.edges == second.edges

    def test_optimized_plan_is_left_deep_with_same_structure(self, planner):
        plan = planner.plan_query(FOUR_TABLE)
        assert isinstance(plan, Project)
        assert set(plan.edges()) == set(FOUR_TABLE.joins)
        node = plan.child
        while isinstance(node, Join):
            assert isinstance(node.right, (Scan, Filter))
            node = node.left
        assert isinstance(node, (Scan, Filter))

    def test_no_join_query_orders_trivially(self, planner):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        order = planner.join_order(query)
        assert order.start_table == "Employee"
        assert order.edges == ()

    def test_disconnected_edges_are_rejected(self, planner):
        bad = logical_plan_for_query(TWO_TABLE)
        disconnected = Join(
            Join(Scan("Employee"), Scan("Department"), EMP_DEPT),
            Scan("Project"),
            ForeignKey("Ghost", "x", "Phantom", "y"),
        )
        with pytest.raises(QueryError):
            planner.optimize(Project(disconnected, TWO_TABLE.projections))
        assert planner.optimize(bad) is not None


class TestPrefixGrouping:
    def test_group_by_prefix_unites_same_structure_queries(self, planner):
        other = ProjectJoinQuery(
            (ColumnRef("Employee", "Salary"),),
            (EMP_DEPT,),
        )
        single = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        groups = Planner.group_by_prefix([TWO_TABLE, other, single])
        assert len(groups) == 2
        assert sorted(len(group) for group in groups.values()) == [1, 2]
