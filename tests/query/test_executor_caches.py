"""Tests for the executor's reusable join indexes, existence memo and
edge-case semantics of the vectorized path (ISSUE 2 satellite coverage)."""

from __future__ import annotations

import pytest

from repro.dataset import Column, Database, DataType
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.executor import Executor
from repro.query.pj_query import ProjectJoinQuery

EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")

JOIN_QUERY = ProjectJoinQuery(
    (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
    (EMP_DEPT,),
)


@pytest.fixture()
def executor(company_db):
    return Executor(company_db)


class TestJoinIndexReuse:
    def test_first_join_builds_then_reuses_the_index(self, executor):
        executor.execute(JOIN_QUERY)
        assert executor.stats.join_index_builds == 1
        assert executor.stats.join_index_hits == 0
        executor.execute(JOIN_QUERY)
        executor.execute(JOIN_QUERY)
        assert executor.stats.join_index_builds == 1
        assert executor.stats.join_index_hits == 2

    def test_index_is_shared_across_queries_on_the_same_key(self, executor):
        executor.execute(JOIN_QUERY)
        other = ProjectJoinQuery(
            (ColumnRef("Department", "Budget"), ColumnRef("Employee", "Salary")),
            (EMP_DEPT,),
        )
        executor.execute(other)
        assert executor.stats.join_index_builds == 1
        assert executor.stats.join_index_hits == 1

    def test_insert_invalidates_the_cached_index(self, executor, company_db):
        executor.execute(JOIN_QUERY)
        # The cost-based plan streams Department (the smaller side) and
        # probes the cached join index on Employee.Department; a write to
        # Employee must invalidate that index.
        company_db.table("Employee").insert((7, "Grace Ito", "Sales", 88_000.0, 31))
        rows = executor.execute(JOIN_QUERY)
        assert executor.stats.join_index_builds == 2
        assert len(rows) == 7

    def test_insert_into_unprobed_table_keeps_the_index(self, executor, company_db):
        executor.execute(JOIN_QUERY)
        # Department is streamed, not probed, so growing it does not
        # invalidate the cached Employee-side index.
        company_db.table("Department").insert(("Support", "Toledo", 50_000.0))
        rows = executor.execute(JOIN_QUERY)
        assert executor.stats.join_index_builds == 1
        assert executor.stats.join_index_hits == 1
        assert len(rows) == 6  # nobody works in Support yet

    def test_reused_index_gives_same_results_as_fresh_executor(self, executor, company_db):
        first = executor.execute(JOIN_QUERY)
        again = executor.execute(JOIN_QUERY)
        fresh = Executor(company_db).execute(JOIN_QUERY)
        assert sorted(first) == sorted(again) == sorted(fresh)


class TestExistsMemo:
    def test_memo_hit_and_miss_counters(self, executor):
        predicates = {1: lambda v: "Alice" in v}
        key = ("probe", "alice")
        assert executor.exists(JOIN_QUERY, predicates, cache_key=key)
        assert executor.stats.exists_cache_misses == 1
        assert executor.stats.exists_cache_hits == 0
        assert executor.exists(JOIN_QUERY, predicates, cache_key=key)
        assert executor.stats.exists_cache_hits == 1
        assert executor.exists_memo_size == 1

    def test_memo_hit_skips_execution(self, executor):
        key = ("probe", "anything")
        executor.exists(JOIN_QUERY, cache_key=key)
        executed_before = executor.stats.queries_executed
        executor.exists(JOIN_QUERY, cache_key=key)
        assert executor.stats.queries_executed == executed_before

    def test_no_cache_key_means_no_memo(self, executor):
        executor.exists(JOIN_QUERY)
        executor.exists(JOIN_QUERY)
        assert executor.stats.exists_cache_hits == 0
        assert executor.stats.exists_cache_misses == 0
        assert executor.exists_memo_size == 0

    def test_memo_invalidated_when_database_changes(self, executor, company_db):
        predicates = {1: lambda v: v == "Grace Ito"}
        key = ("probe", "grace")
        assert not executor.exists(JOIN_QUERY, predicates, cache_key=key)
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Sales", 88_000.0, 31)
        )
        assert executor.exists(JOIN_QUERY, predicates, cache_key=key)
        assert executor.stats.exists_cache_misses == 2


class TestCountWithoutMaterialization:
    def test_count_matches_execute_length(self, executor):
        four_table = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        assert executor.count(four_table) == len(executor.execute(four_table))

    def test_count_does_not_emit_rows(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        executor.count(query)
        assert executor.stats.rows_emitted == 0

    def test_count_with_predicates(self, executor):
        assert (
            executor.count(JOIN_QUERY, {0: lambda city: city == "Ann Arbor"}) == 4
        )

    def test_count_empty_pushdown(self, executor):
        assert executor.count(JOIN_QUERY, {0: lambda city: False}) == 0


class TestEdgeSemantics:
    def test_null_join_keys_never_match_through_cached_index(self):
        database = Database("nulljoin")
        left = database.create_table(
            "L", [Column("k", DataType.TEXT), Column("v", DataType.INT)]
        )
        right = database.create_table(
            "R", [Column("k", DataType.TEXT), Column("w", DataType.INT)]
        )
        left.insert_many([("a", 1), (None, 2)])
        right.insert_many([("a", 10), (None, 20)])
        database.link("L.k", "R.k")
        query = ProjectJoinQuery(
            (ColumnRef("L", "v"), ColumnRef("R", "w")),
            (ForeignKey("L", "k", "R", "k"),),
        )
        executor = Executor(database)
        # Twice: once building the join index, once reusing it.
        assert executor.execute(query) == [(1, 10)]
        assert executor.execute(query) == [(1, 10)]
        assert executor.exists(query)

    def test_limit_terminates_early(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        rows = executor.execute(query, limit=2)
        assert len(rows) == 2
        assert executor.stats.rows_emitted == 2

    def test_limit_zero_rows(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        assert executor.execute(query, limit=0) == []

    def test_cell_predicate_position_out_of_range(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        with pytest.raises(QueryError):
            executor.execute(query, cell_predicates={1: lambda v: True})
        with pytest.raises(QueryError):
            executor.execute(query, cell_predicates={-1: lambda v: True})

    def test_disconnected_join_edges_raise(self, executor):
        # Two edges that never touch a common table cannot be ordered into
        # a connected join tree; _join_order reports that directly.
        query = ProjectJoinQuery(
            (ColumnRef("A", "x"),),
            (
                ForeignKey("A", "x", "B", "x"),
                ForeignKey("C", "y", "D", "y"),
            ),
        )
        with pytest.raises(QueryError, match="connected tree"):
            executor._join_order(query)

    def test_empty_table_join_is_empty(self):
        database = Database("emptyjoin")
        left = database.create_table("L", [Column("k", DataType.INT)])
        database.create_table("R", [Column("k", DataType.INT)])
        left.insert((1,))
        query = ProjectJoinQuery(
            (ColumnRef("L", "k"), ColumnRef("R", "k")),
            (ForeignKey("L", "k", "R", "k"),),
        )
        assert Executor(database).execute(query) == []


class TestSchemaChangeInvalidation:
    def _rebuild_b(self, database, reorder):
        database.drop_table("B")
        columns = [Column("k", DataType.TEXT), Column("w", DataType.INT)]
        if reorder:
            columns.reverse()
        table = database.create_table("B", columns)
        return table

    def test_plan_cache_dropped_when_table_recreated_with_new_layout(self):
        database = Database("replan")
        a = database.create_table(
            "A", [Column("k", DataType.TEXT), Column("v", DataType.INT)]
        )
        b = database.create_table(
            "B", [Column("k", DataType.TEXT), Column("w", DataType.INT)]
        )
        a.insert(("x", 1))
        b.insert(("x", 10))
        query = ProjectJoinQuery(
            (ColumnRef("A", "v"), ColumnRef("B", "w")),
            (ForeignKey("A", "k", "B", "k"),),
        )
        executor = Executor(database)
        assert executor.execute(query) == [(1, 10)]
        # Recreate B with its columns reordered; the stale plan would read
        # the wrong column as the join key.
        b2 = self._rebuild_b(database, reorder=True)
        b2.insert((20, "x"))
        assert executor.execute(query) == [(1, 20)]

    def test_exists_memo_dropped_when_table_recreated(self):
        database = Database("rememo")
        table = database.create_table("T", [Column("a", DataType.TEXT)])
        table.insert(("alpha",))
        query = ProjectJoinQuery((ColumnRef("T", "a"),))
        executor = Executor(database)
        key = ("has-beta",)
        predicates = {0: lambda v: v == "beta"}
        assert not executor.exists(query, predicates, cache_key=key)
        # Drop and recreate with the same name and one matching row: the
        # naive (count, summed-versions) token would collide here.
        database.drop_table("T")
        fresh = database.create_table("T", [Column("a", DataType.TEXT)])
        fresh.insert(("beta",))
        assert executor.exists(query, predicates, cache_key=key)


class TestCacheBounds:
    def test_exists_memo_evicts_oldest_beyond_cap(self, executor, monkeypatch):
        import repro.query.executor as executor_module

        monkeypatch.setattr(executor_module, "MAX_EXISTS_MEMO_ENTRIES", 3)
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        for i in range(5):
            executor.exists(query, cache_key=("probe", i))
        assert executor.exists_memo_size == 3
        # Oldest entries were evicted; re-probing them misses again.
        misses_before = executor.stats.exists_cache_misses
        executor.exists(query, cache_key=("probe", 0))
        assert executor.stats.exists_cache_misses == misses_before + 1
        # Newest entry is still memoized.
        hits_before = executor.stats.exists_cache_hits
        executor.exists(query, cache_key=("probe", 4))
        assert executor.stats.exists_cache_hits == hits_before + 1
