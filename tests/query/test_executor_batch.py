"""Tests for batched existence probes (Executor.exists_batch)."""

from __future__ import annotations

import pytest

from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.executor import BatchProbe, Executor
from repro.query.pj_query import ProjectJoinQuery

EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")

JOIN_QUERY = ProjectJoinQuery(
    (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
    (EMP_DEPT,),
)
OTHER_PROJECTIONS = ProjectJoinQuery(
    (ColumnRef("Department", "Budget"), ColumnRef("Employee", "Salary")),
    (EMP_DEPT,),
)


@pytest.fixture()
def executor(company_db):
    return Executor(company_db)


def probe(query=JOIN_QUERY, predicates=None, key=None):
    return BatchProbe(query=query, cell_predicates=predicates, cache_key=key)


class TestOutcomeEquivalence:
    def test_batch_matches_individual_exists(self, executor, company_db):
        probes = [
            probe(predicates={1: lambda v: "Alice" in v}),
            probe(predicates={1: lambda v: v == "Nobody"}),
            probe(predicates={0: lambda v: v == "Detroit"}),
            probe(
                query=OTHER_PROJECTIONS,
                predicates={0: lambda v: v > 1_000_000, 1: lambda v: v > 100_000},
            ),
            probe(),
        ]
        outcomes = executor.exists_batch(probes)
        reference = Executor(company_db)
        expected = [
            reference.exists(p.query, cell_predicates=p.cell_predicates)
            for p in probes
        ]
        assert outcomes == expected == [True, False, True, True, True]

    def test_empty_pushdown_probe_never_joins(self, executor):
        outcomes = executor.exists_batch(
            [probe(predicates={0: lambda v: False})]
        )
        assert outcomes == [False]
        assert executor.stats.joins_performed == 0
        assert executor.stats.batch_executions == 0

    def test_empty_batch(self, executor):
        assert executor.exists_batch([]) == []

    def test_mixed_structures_are_rejected(self, executor):
        single = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        with pytest.raises(QueryError, match="join structure"):
            executor.exists_batch([probe(), probe(query=single)])


class TestWorkSharing:
    def test_batch_joins_once_for_many_probes(self, executor, company_db):
        probes = [
            probe(predicates={1: (lambda name: lambda v: v == name)(n)})
            for n in ["Alice Chen", "Bob Diaz", "Carol Evans", "Nobody"]
        ]
        executor.exists_batch(probes)
        assert executor.stats.batch_executions == 1
        # "Nobody" empties during pushdown and never reaches the join,
        # exactly as on the per-candidate path.
        assert executor.stats.batched_probes == 3
        assert executor.stats.joins_performed == 1

        per_candidate = Executor(company_db)
        for p in probes:
            per_candidate.exists(p.query, cell_predicates=p.cell_predicates)
        assert per_candidate.stats.joins_performed == 3
        assert (
            per_candidate.stats.join_index_hits
            + per_candidate.stats.join_index_builds
        ) == 3
        assert (
            executor.stats.join_index_hits + executor.stats.join_index_builds
        ) == 1

    def test_plan_is_shared_across_differing_projections(self, executor):
        executor.exists_batch(
            [probe(), probe(query=OTHER_PROJECTIONS)]
        )
        # One lowered plan serves the whole batch ...
        assert executor.stats.plan_cache_builds == 1
        assert executor.plan_cache_size == 1
        # ... and any later query over the same structure reuses it.
        executor.execute(OTHER_PROJECTIONS)
        assert executor.stats.plan_cache_hits == 1
        assert executor.stats.plan_cache_builds == 1

    def test_batch_shares_pushdown_scans_across_probes(self, executor):
        calls = {"count": 0}

        def city_is_ann_arbor(value):
            calls["count"] += 1
            return value == "Ann Arbor"

        probes = [
            BatchProbe(
                JOIN_QUERY,
                {0: city_is_ann_arbor},
                predicate_tags={0: "city=AnnArbor"},
            ),
            BatchProbe(
                JOIN_QUERY,
                {0: city_is_ann_arbor, 1: lambda v: True},
                predicate_tags={0: "city=AnnArbor"},
            ),
        ]
        assert executor.exists_batch(probes) == [True, True]
        # Department.City is dictionary-encoded with 3 distinct values;
        # an unshared pushdown would evaluate the predicate 6 times.
        assert calls["count"] == 3


class TestMemoInteraction:
    def test_batch_memoizes_every_probe(self, executor):
        probes = [
            probe(predicates={1: lambda v: "Alice" in v}, key=("p", 1)),
            probe(predicates={1: lambda v: v == "Nobody"}, key=("p", 2)),
        ]
        executor.exists_batch(probes)
        assert executor.stats.exists_cache_misses == 2
        assert executor.exists_memo_size == 2
        # Every outcome — including the batched peer's — now hits.
        assert executor.exists(
            JOIN_QUERY, {1: lambda v: "Alice" in v}, cache_key=("p", 1)
        )
        assert not executor.exists(
            JOIN_QUERY, {1: lambda v: v == "Nobody"}, cache_key=("p", 2)
        )
        assert executor.stats.exists_cache_hits == 2

    def test_batch_resolves_memo_hits_without_executing(self, executor):
        executor.exists(JOIN_QUERY, cache_key=("warm",))
        executed = executor.stats.queries_executed
        outcomes = executor.exists_batch([probe(key=("warm",))])
        assert outcomes == [True]
        assert executor.stats.queries_executed == executed
        assert executor.stats.exists_cache_hits == 1
