"""Unit tests for SQL rendering."""

from __future__ import annotations

from repro.dataset.schema import ColumnRef, ForeignKey
from repro.query.pj_query import ProjectJoinQuery
from repro.query.sql import to_sql


class TestToSql:
    def test_single_table_query(self):
        query = ProjectJoinQuery((ColumnRef("Lake", "Name"), ColumnRef("Lake", "Area")))
        assert to_sql(query) == "SELECT Lake.Name, Lake.Area FROM Lake"

    def test_join_query_matches_paper_example_shape(self):
        query = ProjectJoinQuery(
            (
                ColumnRef("geo_lake", "Province"),
                ColumnRef("Lake", "Name"),
                ColumnRef("Lake", "Area"),
            ),
            (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
        )
        sql = to_sql(query)
        assert sql == (
            "SELECT geo_lake.Province, Lake.Name, Lake.Area "
            "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
        )

    def test_multiple_join_conditions_joined_with_and(self):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (
                ForeignKey("Employee", "Department", "Department", "Name"),
                ForeignKey("Assignment", "EmployeeId", "Employee", "Id"),
                ForeignKey("Assignment", "ProjectCode", "Project", "Code"),
            ),
        )
        sql = to_sql(query)
        assert sql.count(" AND ") == 2
        assert "FROM Assignment, Department, Employee, Project" in sql

    def test_pretty_uses_newlines(self):
        query = ProjectJoinQuery(
            (ColumnRef("Lake", "Name"),),
            (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
        )
        pretty = to_sql(query, pretty=True)
        assert pretty.count("\n") == 2

    def test_identifiers_with_spaces_are_quoted(self):
        query = ProjectJoinQuery((ColumnRef("My Table", "Some Column"),))
        assert to_sql(query) == 'SELECT "My Table"."Some Column" FROM "My Table"'

    def test_projection_order_is_preserved(self):
        query = ProjectJoinQuery(
            (ColumnRef("Lake", "Area"), ColumnRef("Lake", "Name"))
        )
        assert to_sql(query).startswith("SELECT Lake.Area, Lake.Name")
