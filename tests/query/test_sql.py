"""Unit tests for SQL rendering."""

from __future__ import annotations

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
)
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery
from repro.query.sql import constraint_to_sql, parse_literal, render_literal, to_sql


class TestToSql:
    def test_single_table_query(self):
        query = ProjectJoinQuery((ColumnRef("Lake", "Name"), ColumnRef("Lake", "Area")))
        assert to_sql(query) == "SELECT Lake.Name, Lake.Area FROM Lake"

    def test_join_query_matches_paper_example_shape(self):
        query = ProjectJoinQuery(
            (
                ColumnRef("geo_lake", "Province"),
                ColumnRef("Lake", "Name"),
                ColumnRef("Lake", "Area"),
            ),
            (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
        )
        sql = to_sql(query)
        assert sql == (
            "SELECT geo_lake.Province, Lake.Name, Lake.Area "
            "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
        )

    def test_multiple_join_conditions_joined_with_and(self):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (
                ForeignKey("Employee", "Department", "Department", "Name"),
                ForeignKey("Assignment", "EmployeeId", "Employee", "Id"),
                ForeignKey("Assignment", "ProjectCode", "Project", "Code"),
            ),
        )
        sql = to_sql(query)
        assert sql.count(" AND ") == 2
        assert "FROM Assignment, Department, Employee, Project" in sql

    def test_pretty_uses_newlines(self):
        query = ProjectJoinQuery(
            (ColumnRef("Lake", "Name"),),
            (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
        )
        pretty = to_sql(query, pretty=True)
        assert pretty.count("\n") == 2

    def test_identifiers_with_spaces_are_quoted(self):
        query = ProjectJoinQuery((ColumnRef("My Table", "Some Column"),))
        assert to_sql(query) == 'SELECT "My Table"."Some Column" FROM "My Table"'

    def test_projection_order_is_preserved(self):
        query = ProjectJoinQuery(
            (ColumnRef("Lake", "Area"), ColumnRef("Lake", "Name"))
        )
        assert to_sql(query).startswith("SELECT Lake.Area, Lake.Name")


# Sample values that must survive the trip into (and back out of) SQL:
# quotes, the constraint language's own operators, comment and statement
# terminators, unicode.
TRICKY_STRINGS = [
    "O'Brien",
    "Lake 'Tahoe'",
    "''",
    "'",
    "California || Nevada",
    "a && b",
    "100%; DROP TABLE Lake; --",
    "tab\tand\nnewline",
    "ünïcødé ✓",
    "",
]


class TestLiteralRoundTrip:
    @pytest.mark.parametrize("value", TRICKY_STRINGS)
    def test_string_round_trip(self, value):
        assert parse_literal(render_literal(value)) == value

    @pytest.mark.parametrize("value", [0, -7, 12345, 3.5, -0.25, True, False, None])
    def test_scalar_round_trip(self, value):
        assert parse_literal(render_literal(value)) == value

    def test_single_quotes_are_doubled(self):
        assert render_literal("O'Brien") == "'O''Brien'"
        assert render_literal("'") == "''''"

    def test_pipes_need_no_escaping_inside_quotes(self):
        assert render_literal("California || Nevada") == "'California || Nevada'"

    def test_malformed_literals_are_rejected(self):
        with pytest.raises(QueryError):
            parse_literal("'unterminated")
        with pytest.raises(QueryError):
            parse_literal("'bad ' quote'")
        with pytest.raises(QueryError):
            parse_literal("not a literal")


class TestConstraintToSql:
    def test_exact_value_with_quote(self):
        sql = constraint_to_sql("Lake.Name", ExactValue("O'Brien"))
        assert sql == "Lake.Name = 'O''Brien'"

    def test_one_of_renders_in_list(self):
        sql = constraint_to_sql("P.Name", OneOf(["California", "Nevada"]))
        assert sql == "P.Name IN ('California', 'Nevada')"

    def test_range_and_predicate(self):
        assert constraint_to_sql("L.Area", Range(400, 600)) == (
            "L.Area >= 400 AND L.Area <= 600"
        )
        assert constraint_to_sql("L.Area", Range(0, None, low_inclusive=False)) == (
            "L.Area > 0"
        )
        assert constraint_to_sql("L.Area", Predicate(">=", 0)) == "L.Area >= 0"
        assert constraint_to_sql("L.Area", Predicate("==", 497)) == "L.Area = 497"
        assert constraint_to_sql("L.Area", Predicate("!=", 497)) == "L.Area <> 497"

    def test_logical_combinations_and_any(self):
        conj = Conjunction([Predicate(">=", 0), Predicate("<", 10)])
        assert constraint_to_sql("C.X", conj) == "(C.X >= 0 AND C.X < 10)"
        disj = Disjunction([ExactValue("a"), ExactValue("b")])
        assert constraint_to_sql("C.X", disj) == "(C.X = 'a' OR C.X = 'b')"
        assert constraint_to_sql("C.X", AnyValue()) == "C.X IS NOT NULL"


class TestToSqlWithSpec:
    def _query(self):
        return ProjectJoinQuery(
            (
                ColumnRef("geo_lake", "Province"),
                ColumnRef("Lake", "Name"),
            ),
            (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
        )

    def test_sample_predicates_are_rendered_and_escaped(self):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [OneOf(["California", "Nevada"]), ExactValue("Lake 'Tahoe'")]
        )
        sql = to_sql(self._query(), spec=spec)
        assert "geo_lake.Province IN ('California', 'Nevada')" in sql
        assert "Lake.Name = 'Lake ''Tahoe'''" in sql
        # Join condition is still present, ANDed with the sample group.
        assert "geo_lake.Lake = Lake.Name" in sql

    def test_multiple_sample_rows_are_or_connected(self):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("California"), None])
        spec.add_sample_cells([ExactValue("Nevada"), None])
        sql = to_sql(self._query(), spec=spec)
        assert (
            "((geo_lake.Province = 'California') OR "
            "(geo_lake.Province = 'Nevada'))"
        ) in sql

    def test_spec_without_constrained_cells_changes_nothing(self):
        spec = MappingSpec(2)
        assert to_sql(self._query(), spec=spec) == to_sql(self._query())

    def test_every_tricky_string_yields_balanced_quoting(self):
        for value in TRICKY_STRINGS:
            spec = MappingSpec(2)
            spec.add_sample_cells([ExactValue(value), None])
            sql = to_sql(self._query(), spec=spec)
            # An unbalanced quote count is the classic injection/corruption
            # symptom; doubled quotes keep the total even.
            assert sql.count("'") % 2 == 0
            rendered = render_literal(value)
            assert rendered in sql
            assert parse_literal(rendered) == value
