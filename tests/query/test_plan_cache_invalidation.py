"""Plan/memo cache invalidation across schema changes, data changes and
``ArtifactStore.refresh()`` (ISSUE 5 satellite coverage).

The executor keys its physical-plan cache by canonical plan hash (join
structure) and its existence memo by caller-supplied canonical probe
signatures.  These tests prove both caches are dropped exactly when they
must be: the plan cache on schema-version changes, the memo on any
data-version change — including the append-and-refresh lifecycle of the
service layer's artifact store.
"""

from __future__ import annotations

import pytest

from repro.dataset import Column, Database, DataType
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.query.executor import BatchProbe, Executor
from repro.query.pj_query import ProjectJoinQuery

EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")

JOIN_QUERY = ProjectJoinQuery(
    (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
    (EMP_DEPT,),
)


class TestPlanCacheKeyedByPlanHash:
    def test_same_structure_shares_one_physical_plan(self, company_db):
        executor = Executor(company_db)
        executor.execute(JOIN_QUERY)
        other = ProjectJoinQuery(
            (ColumnRef("Department", "Budget"), ColumnRef("Employee", "Salary")),
            (EMP_DEPT,),
        )
        executor.execute(other)
        # Different projections, same join structure: one plan build.
        assert executor.stats.plan_cache_builds == 1
        assert executor.stats.plan_cache_hits == 1
        assert executor.plan_cache_size == 1

    def test_edge_order_does_not_duplicate_plans(self, company_db):
        assign_emp = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
        assign_proj = ForeignKey("Assignment", "ProjectCode", "Project", "Code")
        forward = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, assign_emp, assign_proj),
        )
        backward = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (assign_proj, assign_emp, EMP_DEPT),
        )
        executor = Executor(company_db)
        executor.execute(forward)
        executor.execute(backward)
        assert executor.stats.plan_cache_builds == 1
        assert executor.stats.plan_cache_hits == 1

    def test_schema_version_change_invalidates_plans(self, company_db):
        executor = Executor(company_db)
        executor.execute(JOIN_QUERY)
        assert executor.plan_cache_size == 1
        # Adding a table bumps the schema version; cached plans (which
        # bake in column positions) must be rebuilt.
        company_db.create_table("Extra", [Column("x", DataType.INT)])
        executor.execute(JOIN_QUERY)
        assert executor.stats.plan_cache_builds == 2

    def test_data_growth_keeps_plans(self, company_db):
        executor = Executor(company_db)
        executor.execute(JOIN_QUERY)
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Sales", 88_000.0, 31)
        )
        executor.execute(JOIN_QUERY)
        # Appends change data, not structure: the plan survives.
        assert executor.stats.plan_cache_builds == 1
        assert executor.stats.plan_cache_hits == 1


class TestMemoInvalidationThroughBatches:
    def test_batched_outcomes_invalidate_on_data_change(self, company_db):
        executor = Executor(company_db)
        predicates = {1: lambda v: v == "Grace Ito"}
        key = ("probe", "grace")
        assert executor.exists_batch(
            [BatchProbe(JOIN_QUERY, predicates, key)]
        ) == [False]
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Sales", 88_000.0, 31)
        )
        assert executor.exists_batch(
            [BatchProbe(JOIN_QUERY, predicates, key)]
        ) == [True]
        assert executor.stats.exists_cache_misses == 2
        assert executor.stats.exists_cache_hits == 0


class TestArtifactRefreshInvalidation:
    def _spec(self):
        from repro.constraints.spec import MappingSpec
        from repro.constraints.values import ExactValue

        # Both cells exist up front (so discovery reaches validation),
        # but Eve works in Research (Ann Arbor), not Chicago: the join
        # filter fails and no query is confirmed.
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Chicago"), ExactValue("Eve Gupta")])
        return spec

    def test_refresh_lifecycle_drops_stale_outcomes(self, company_db):
        from repro.discovery.engine import Prism
        from repro.service.artifacts import ArtifactStore

        store = ArtifactStore()
        bundle = store.get(company_db)
        engine = Prism.from_artifacts(bundle, time_limit=30.0)
        before = engine.discover(self._spec())
        assert before.num_queries == 0
        assert engine.executor.exists_memo_size > 0

        # A second Eve Gupta joins Sales (Chicago): the appended row
        # flips outcomes the executor memo decided above.
        company_db.table("Employee").insert(
            (7, "Eve Gupta", "Sales", 88_000.0, 31)
        )
        refreshed = store.refresh(company_db)
        assert refreshed.key != bundle.key
        assert store.stats.refreshes >= 1

        # A fresh engine over the refreshed bundle sees the new row ...
        fresh = Prism.from_artifacts(refreshed, time_limit=30.0)
        after = fresh.discover(self._spec())
        assert after.num_queries >= 1
        # ... and so does the *old* engine: its executor memo is keyed
        # on the data version and self-invalidates.
        stale = engine.discover(self._spec())
        assert stale.sql() == after.sql()

    def test_refreshed_catalog_feeds_the_new_planner(self, company_db):
        from repro.discovery.engine import Prism
        from repro.service.artifacts import ArtifactStore

        store = ArtifactStore()
        bundle = store.get(company_db)
        assert bundle.catalog.table_row_count("Employee") == 6
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Sales", 88_000.0, 31)
        )
        refreshed = store.refresh(company_db)
        assert refreshed.catalog.table_row_count("Employee") == 7
        engine = Prism.from_artifacts(refreshed, time_limit=30.0)
        # The engine's planner estimates with the refreshed statistics.
        from repro.query.plan import Scan

        assert engine.executor.planner.estimated_rows(Scan("Employee")) == 7
