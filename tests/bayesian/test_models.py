"""Unit tests for single-relation models, join indicators and training."""

from __future__ import annotations

import pytest

from repro.bayesian.join_indicator import JoinIndicatorModel
from repro.bayesian.single_relation import SingleRelationModel
from repro.bayesian.training import train_models
from repro.constraints.values import ExactValue, Range
from repro.dataset import Column, Database, DataType
from repro.dataset.schema import ForeignKey
from repro.errors import TrainingError


class TestSingleRelationModel:
    def test_fit_from_table(self, company_db):
        model = SingleRelationModel.fit(company_db.table("Employee"))
        assert model.table_name == "Employee"
        assert model.row_count == 6
        assert model.has_column("Salary")
        assert not model.has_column("Ghost")

    def test_row_match_probability_is_product(self, company_db):
        model = SingleRelationModel.fit(company_db.table("Employee"))
        department = model.distribution("Department").match_probability(
            ExactValue("Research")
        )
        salary = model.distribution("Salary").match_probability(Range(100_000, 120_000))
        joint = model.row_match_probability(
            {"Department": ExactValue("Research"), "Salary": Range(100_000, 120_000)}
        )
        assert joint == pytest.approx(department * salary)

    def test_exists_probability_increases_with_rows(self, company_db):
        model = SingleRelationModel.fit(company_db.table("Employee"))
        constraints = {"Department": ExactValue("Research")}
        small = model.exists_probability(constraints, row_count=1)
        large = model.exists_probability(constraints, row_count=100)
        assert small < large <= 1.0

    def test_failure_probability_complements_exists(self, company_db):
        model = SingleRelationModel.fit(company_db.table("Employee"))
        constraints = {"Department": ExactValue("Research")}
        assert model.failure_probability(constraints) == pytest.approx(
            1.0 - model.exists_probability(constraints)
        )

    def test_zero_rows_mean_certain_failure(self, company_db):
        model = SingleRelationModel.fit(company_db.table("Employee"))
        assert model.exists_probability({"Name": ExactValue("x")}, row_count=0) == 0.0

    def test_unknown_column_raises(self, company_db):
        model = SingleRelationModel.fit(company_db.table("Employee"))
        with pytest.raises(TrainingError):
            model.distribution("Ghost")

    def test_negative_row_count_rejected(self):
        with pytest.raises(TrainingError):
            SingleRelationModel("T", -1, {})


class TestJoinIndicatorModel:
    def test_foreign_key_join_statistics(self, company_db):
        fk = ForeignKey("Employee", "Department", "Department", "Name")
        model = JoinIndicatorModel.fit(company_db, fk)
        # Every employee references an existing department.
        assert model.child_match_fraction == pytest.approx(1.0)
        assert model.parent_match_fraction == pytest.approx(1.0)
        # 6 joining pairs out of 6 * 4 possible pairs.
        assert model.expected_join_size == 6
        assert model.join_probability == pytest.approx(6 / 24)

    def test_dangling_references_lower_match_fraction(self):
        database = Database("dangling")
        parent = database.create_table("P", [Column("k", DataType.TEXT)])
        child = database.create_table("C", [Column("fk", DataType.TEXT)])
        parent.insert_many([("a",), ("b",)])
        child.insert_many([("a",), ("z",), ("z",)])
        fk = ForeignKey("C", "fk", "P", "k")
        database.add_foreign_key(fk)
        model = JoinIndicatorModel.fit(database, fk)
        assert model.child_match_fraction == pytest.approx(1 / 3)
        assert model.parent_match_fraction == pytest.approx(1 / 2)
        assert model.expected_join_size == 1

    def test_empty_tables_give_zero_probability(self):
        database = Database("empty")
        database.create_table("P", [Column("k", DataType.TEXT)])
        database.create_table("C", [Column("fk", DataType.TEXT)])
        fk = ForeignKey("C", "fk", "P", "k")
        database.add_foreign_key(fk)
        model = JoinIndicatorModel.fit(database, fk)
        assert model.join_probability == 0.0
        assert model.expected_join_size == 0.0

    def test_key_preserves_direction(self):
        fk = ForeignKey("C", "fk", "P", "k")
        assert JoinIndicatorModel.key(fk) == ("C", "fk", "P", "k")


class TestTraining:
    def test_train_models_covers_all_tables_and_edges(self, company_db):
        model_set = train_models(company_db)
        assert model_set.num_relation_models == len(company_db.table_names)
        assert model_set.num_join_models == len(company_db.foreign_keys)
        assert model_set.database_name == "company"

    def test_estimator_is_built_from_models(self, company_db):
        estimator = train_models(company_db).estimator()
        assert estimator.relation_model("Employee").row_count == 6

    def test_training_empty_database_raises(self):
        with pytest.raises(TrainingError):
            train_models(Database("nothing"))
