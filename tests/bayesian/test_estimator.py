"""Unit tests for the selectivity / failure-probability estimator."""

from __future__ import annotations

import pytest

from repro.bayesian.training import train_models
from repro.constraints.values import ExactValue, Range
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.query.pj_query import ProjectJoinQuery


EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")


@pytest.fixture()
def estimator(company_db):
    return train_models(company_db).estimator()


def single_table_query() -> ProjectJoinQuery:
    return ProjectJoinQuery(
        (ColumnRef("Employee", "Name"), ColumnRef("Employee", "Department"))
    )


def join_query() -> ProjectJoinQuery:
    return ProjectJoinQuery(
        (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
        (EMP_DEPT,),
    )


class TestResultSize:
    def test_single_table_size_is_row_count(self, estimator):
        assert estimator.expected_result_size(single_table_query()) == 6

    def test_fk_join_size_matches_reality(self, estimator, company_db):
        # Every employee joins exactly one department: expected size 6.
        assert estimator.expected_result_size(join_query()) == pytest.approx(6.0)

    def test_unknown_edge_assumes_key_join(self, estimator):
        unknown = ForeignKey("Employee", "Name", "Project", "Title")
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Name"), ColumnRef("Project", "Title")),
            (unknown,),
        )
        size = estimator.expected_result_size(query)
        assert size == pytest.approx(6 * 4 / 4)


class TestMatchProbability:
    def test_row_match_probability_multiplies_cells(self, estimator):
        query = single_table_query()
        both = estimator.row_match_probability(
            query,
            {0: ExactValue("Alice Chen"), 1: ExactValue("Engineering")},
        )
        name_only = estimator.row_match_probability(query, {0: ExactValue("Alice Chen")})
        dept_only = estimator.row_match_probability(query, {1: ExactValue("Engineering")})
        assert both == pytest.approx(name_only * dept_only)

    def test_expected_matches_scale_with_result_size(self, estimator):
        query = join_query()
        cells = {1: ExactValue("Alice Chen")}
        assert estimator.expected_matches(query, cells) == pytest.approx(
            estimator.expected_result_size(query)
            * estimator.row_match_probability(query, cells)
        )


class TestFailureProbability:
    def test_probability_bounds(self, estimator):
        query = join_query()
        probability = estimator.failure_probability(query, {1: ExactValue("Alice Chen")})
        assert 0.0 <= probability <= 1.0

    def test_rare_values_fail_more_often_than_common_ones(self, estimator):
        query = single_table_query()
        rare = estimator.failure_probability(query, {0: ExactValue("Alice Chen")})
        common = estimator.failure_probability(query, {1: ExactValue("Engineering")})
        assert rare > common

    def test_impossible_constraint_is_near_certain_failure(self, estimator):
        query = single_table_query()
        # Salary-like range on a text column's position via a range that the
        # model resolves through frequency scanning: no match -> high failure.
        probability = estimator.failure_probability(
            query, {0: ExactValue("Zzyzx Nobody")}
        )
        assert probability > 0.5

    def test_no_constraints_means_failure_only_if_empty(self, estimator):
        assert estimator.failure_probability(join_query(), {}) < 0.01

    def test_estimated_cost_grows_with_join_size(self, estimator):
        assert estimator.estimated_cost(join_query()) > estimator.estimated_cost(
            single_table_query()
        )

    def test_range_constraints_are_supported(self, estimator):
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Salary"),)
        )
        high = estimator.failure_probability(query, {0: Range(1_000_000, 2_000_000)})
        low = estimator.failure_probability(query, {0: Range(60_000, 130_000)})
        assert high > low
