"""Unit tests for per-column value distributions."""

from __future__ import annotations

import pytest

from repro.bayesian.distributions import ColumnDistribution
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
)
from repro.dataset.types import DataType


@pytest.fixture()
def city_distribution() -> ColumnDistribution:
    values = ["Ann Arbor", "Ann Arbor", "Detroit", "Chicago", None]
    return ColumnDistribution("City", DataType.TEXT, values)


@pytest.fixture()
def salary_distribution() -> ColumnDistribution:
    values = [50.0, 60.0, 70.0, 80.0, 90.0, 100.0, None, None]
    return ColumnDistribution("Salary", DataType.DECIMAL, values)


class TestCategorical:
    def test_value_probability_matches_frequency(self, city_distribution):
        assert city_distribution.value_probability("Ann Arbor") == pytest.approx(2 / 5)
        assert city_distribution.value_probability("Detroit") == pytest.approx(1 / 5)

    def test_unseen_value_gets_smoothed_probability(self, city_distribution):
        probability = city_distribution.value_probability("Nowhere")
        assert 0.0 < probability <= 0.5

    def test_token_probability_counts_word_occurrences(self, city_distribution):
        # 'Arbor' appears as a token of 'Ann Arbor' twice.
        assert city_distribution.value_probability("Arbor") == pytest.approx(2 / 5)

    def test_null_fraction(self, city_distribution):
        assert city_distribution.null_fraction == pytest.approx(1 / 5)

    def test_empty_column(self):
        distribution = ColumnDistribution("x", DataType.TEXT, [])
        assert distribution.value_probability("anything") == 0.0
        assert distribution.match_probability(ExactValue("a")) == 0.0


class TestNumeric:
    def test_range_probability(self, salary_distribution):
        assert salary_distribution.range_probability(60, 80) == pytest.approx(3 / 8)
        assert salary_distribution.range_probability(None, 55) == pytest.approx(1 / 8)
        assert salary_distribution.range_probability(1000, None) == 0.0

    def test_range_probability_respects_exclusivity(self, salary_distribution):
        inclusive = salary_distribution.range_probability(60, 80)
        exclusive = salary_distribution.range_probability(
            60, 80, low_inclusive=False, high_inclusive=False
        )
        assert exclusive < inclusive

    def test_non_numeric_column_has_zero_range_probability(self, city_distribution):
        assert city_distribution.range_probability(0, 10) == 0.0


class TestConstraintProbability:
    def test_exact_and_oneof(self, city_distribution):
        exact = city_distribution.match_probability(ExactValue("Detroit"))
        union = city_distribution.match_probability(OneOf(["Detroit", "Chicago"]))
        assert union == pytest.approx(exact * 2)

    def test_any_value_is_non_null_fraction(self, city_distribution):
        assert city_distribution.match_probability(AnyValue()) == pytest.approx(4 / 5)

    def test_range_constraint(self, salary_distribution):
        probability = salary_distribution.match_probability(Range(60, 80))
        assert probability == pytest.approx(3 / 8)

    def test_predicate_constraints(self, salary_distribution):
        assert salary_distribution.match_probability(
            Predicate(">=", 90)
        ) == pytest.approx(2 / 8)
        assert salary_distribution.match_probability(
            Predicate("<", 60)
        ) == pytest.approx(1 / 8)

    def test_conjunction_multiplies(self, salary_distribution):
        conjunction = Conjunction([Predicate(">=", 60), Predicate("<=", 80)])
        probability = salary_distribution.match_probability(conjunction)
        assert 0.0 < probability <= salary_distribution.match_probability(
            Predicate(">=", 60)
        )

    def test_disjunction_is_at_least_each_part(self, city_distribution):
        disjunction = Disjunction([ExactValue("Detroit"), ExactValue("Chicago")])
        probability = city_distribution.match_probability(disjunction)
        assert probability >= city_distribution.match_probability(ExactValue("Detroit"))

    def test_probabilities_stay_in_unit_interval(self, city_distribution):
        big_union = OneOf(["Ann Arbor", "Detroit", "Chicago", "Ann Arbor"])
        assert 0.0 <= city_distribution.match_probability(big_union) <= 1.0


class TestFromCounts:
    def test_text_from_counts_matches_row_wise_fit(self):
        values = ["Lake Tahoe", "Reno", "Reno", None, "Lake Tahoe", "Tahoe City"]
        row_wise = ColumnDistribution("c", DataType.TEXT, values)
        counts = {"Lake Tahoe": 2, "Reno": 2, "Tahoe City": 1}
        from_counts = ColumnDistribution.from_counts(
            "c", DataType.TEXT, len(values), counts
        )
        assert from_counts._frequencies == row_wise._frequencies
        assert from_counts._token_frequencies == row_wise._token_frequencies
        assert from_counts.null_fraction == row_wise.null_fraction
        for probe in ("Reno", "Tahoe", "Lake Tahoe", "unseen"):
            assert from_counts.value_probability(probe) == pytest.approx(
                row_wise.value_probability(probe)
            )

    def test_numeric_from_counts_matches_row_wise_fit(self):
        values = [10, 10, 20, None, 40]
        row_wise = ColumnDistribution("n", DataType.INT, values)
        from_counts = ColumnDistribution.from_counts(
            "n", DataType.INT, len(values), {10: 2, 20: 1, 40: 1}
        )
        assert sorted(from_counts._numeric.tolist()) == sorted(
            row_wise._numeric.tolist()
        )
        for low, high in ((None, 15), (15, None), (10, 40)):
            assert from_counts.range_probability(low, high) == pytest.approx(
                row_wise.range_probability(low, high)
            )

    def test_row_wise_fit_keeps_cross_type_values_distinct(self):
        # True == 1 in Python, but normalization must see each raw value:
        # a row-wise fit may not pre-aggregate by hash.
        dist = ColumnDistribution("c", DataType.TEXT, [True, 1, "1"])
        assert dist._frequencies == {"true": 1, "1": 2}
