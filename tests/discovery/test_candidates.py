"""Unit tests for candidate schema-mapping query generation."""

from __future__ import annotations

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.index import InvertedIndex
from repro.dataset.schema import ColumnRef
from repro.dataset.schema_graph import SchemaGraph
from repro.discovery.candidates import CandidateGenerator, GenerationLimits
from repro.discovery.related_columns import RelatedColumnFinder, RelatedColumns
from repro.errors import DiscoveryError


@pytest.fixture()
def generator(company_db):
    return CandidateGenerator(company_db, SchemaGraph(company_db))


@pytest.fixture()
def finder(company_db):
    return RelatedColumnFinder(
        company_db, InvertedIndex.build(company_db), MetadataCatalog.build(company_db)
    )


class TestGeneration:
    def test_single_table_candidates(self, generator, finder):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), ExactValue(120000)])
        candidates = generator.generate(spec, finder.find(spec))
        assert candidates
        single_table = [c for c in candidates if c.join_size == 0]
        assert any(
            c.query.projections == (ColumnRef("Employee", "Name"),
                                    ColumnRef("Employee", "Salary"))
            for c in single_table
        )

    def test_cross_table_candidates_require_join_trees(self, generator, finder):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Ann Arbor"), ExactValue("Alice Chen")])
        candidates = generator.generate(spec, finder.find(spec))
        joined = [c for c in candidates if c.join_size >= 1]
        assert joined, "expected candidates joining Department and Employee"
        for candidate in joined:
            candidate.query.validate(generator._database)

    def test_every_candidate_is_a_valid_tree(self, generator, finder, company_db):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        for candidate in generator.generate(spec, finder.find(spec)):
            candidate.query.validate(company_db)

    def test_candidate_ids_are_unique_and_sequential(self, generator, finder):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Engineering")])
        candidates = generator.generate(spec, finder.find(spec))
        assert [c.id for c in candidates] == list(range(len(candidates)))

    def test_duplicate_queries_are_not_emitted(self, generator, finder):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Engineering")])
        candidates = generator.generate(spec, finder.find(spec))
        signatures = [c.query.signature() for c in candidates]
        assert len(signatures) == len(set(signatures))

    def test_unsatisfiable_related_columns_give_no_candidates(self, generator):
        related = RelatedColumns(per_position={0: set()})
        spec = MappingSpec(1).add_sample_cells([ExactValue("Nothing")])
        assert generator.generate(spec, related) == []

    def test_no_constrained_position_raises(self, generator):
        spec = MappingSpec(1)
        with pytest.raises(DiscoveryError):
            generator.generate(spec, RelatedColumns())

    def test_unconstrained_positions_filled_from_join_tree(self, generator, finder):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), None])
        candidates = generator.generate(spec, finder.find(spec))
        assert candidates
        for candidate in candidates:
            assert candidate.query.width == 2
            # The filler column must come from a table of the join tree.
            assert candidate.query.projections[1].table in candidate.query.tables

    def test_same_source_column_never_used_twice(self, generator, finder):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Engineering")])
        for candidate in generator.generate(spec, finder.find(spec)):
            assert len(set(candidate.query.projections)) == 2


class TestLimits:
    def test_max_candidates_is_respected(self, company_db, finder):
        limits = GenerationLimits(max_candidates=3)
        generator = CandidateGenerator(company_db, SchemaGraph(company_db), limits)
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), None])
        candidates = generator.generate(spec, finder.find(spec))
        assert len(candidates) <= 3

    def test_max_tables_limits_join_width(self, company_db, finder):
        limits = GenerationLimits(max_tables=2)
        generator = CandidateGenerator(company_db, SchemaGraph(company_db), limits)
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        candidates = generator.generate(spec, finder.find(spec))
        # Department/Name and Project/Title are three joins apart, so only
        # same-table or two-table assignments survive.
        assert all(len(c.query.tables) <= 2 for c in candidates)

    def test_expired_deadline_stops_generation(self, generator, finder):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), None])
        candidates = generator.generate(spec, finder.find(spec), deadline=0.0)
        assert candidates == []

    def test_limits_are_exposed(self, generator):
        assert generator.limits.max_candidates >= 1
