"""Unit tests for filter-validation scheduling policies and the driver."""

from __future__ import annotations

import pytest

from repro.bayesian.training import train_models
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.discovery.candidates import CandidateQuery
from repro.discovery.filters import build_filters
from repro.discovery.scheduler import (
    BayesianPolicy,
    NaivePolicy,
    OptimalPolicy,
    PathLengthPolicy,
    ValidationDriver,
    make_policy,
)
from repro.discovery.validation import FilterValidator
from repro.errors import DiscoveryError
from repro.query.executor import Executor
from repro.query.pj_query import ProjectJoinQuery


EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")


def build_candidates() -> list[CandidateQuery]:
    """Three candidates of growing join size for (department, project-ish) pairs."""
    queries = [
        ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Department", "City"))
        ),
        ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Employee", "Name")),
            (EMP_DEPT,),
        ),
        ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        ),
    ]
    return [CandidateQuery(i, q) for i, q in enumerate(queries)]


def build_spec() -> MappingSpec:
    spec = MappingSpec(2)
    spec.add_sample_cells(
        [ExactValue("Engineering"), ExactValue("Query Optimizer")]
    )
    return spec


@pytest.fixture()
def estimator(company_db):
    return train_models(company_db).estimator()


def run_with(policy, company_db, estimator=None, spec=None, candidates=None):
    spec = spec or build_spec()
    candidates = candidates or build_candidates()
    filter_set = build_filters(spec, candidates)
    validator = FilterValidator(Executor(company_db), spec)
    driver = ValidationDriver(filter_set, validator, policy, estimator=estimator)
    return driver.run()


class TestPolicyFactory:
    def test_known_names(self):
        assert isinstance(make_policy("naive"), NaivePolicy)
        assert isinstance(make_policy("filter"), PathLengthPolicy)
        assert isinstance(make_policy("path_length"), PathLengthPolicy)
        assert isinstance(make_policy("bayesian"), BayesianPolicy)
        assert isinstance(make_policy("prism"), BayesianPolicy)
        assert isinstance(make_policy("optimal"), OptimalPolicy)
        assert isinstance(make_policy("ORACLE"), OptimalPolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(DiscoveryError):
            make_policy("quantum")


class TestDriverCorrectness:
    def test_all_policies_agree_on_confirmed_candidates(self, company_db, estimator):
        results = {
            "naive": run_with(NaivePolicy(), company_db),
            "filter": run_with(PathLengthPolicy(), company_db),
            "bayesian": run_with(BayesianPolicy(), company_db, estimator),
            "optimal": run_with(OptimalPolicy(), company_db),
        }
        confirmed_sets = {
            name: tuple(result.confirmed_candidate_ids)
            for name, result in results.items()
        }
        assert len(set(confirmed_sets.values())) == 1

    def test_confirmed_candidates_truly_contain_the_sample(self, company_db):
        result = run_with(NaivePolicy(), company_db)
        # Candidate 2 (Department -> ... -> Project) is the only mapping whose
        # result contains ('Engineering', 'Query Optimizer').
        assert result.confirmed_candidate_ids == [2]
        assert set(result.pruned_candidate_ids) == {0, 1}

    def test_every_candidate_is_decided(self, company_db):
        result = run_with(PathLengthPolicy(), company_db)
        assert len(result.confirmed_candidate_ids) + len(
            result.pruned_candidate_ids
        ) == len(build_candidates())

    def test_metadata_only_spec_confirms_all_candidates(self, company_db):
        spec = MappingSpec(2)  # no samples at all
        filter_set = build_filters(spec, build_candidates())
        validator = FilterValidator(Executor(company_db), spec)
        result = ValidationDriver(filter_set, validator, NaivePolicy()).run()
        assert result.confirmed_candidate_ids == [0, 1, 2]
        assert result.validations == 0

    def test_expired_deadline_reports_timeout(self, company_db):
        spec = build_spec()
        filter_set = build_filters(spec, build_candidates())
        validator = FilterValidator(Executor(company_db), spec)
        driver = ValidationDriver(
            filter_set, validator, NaivePolicy(), deadline=0.0
        )
        result = driver.run()
        assert result.timed_out
        assert result.validations == 0


class TestValidationCounts:
    def test_naive_validates_at_least_one_filter_per_candidate(self, company_db):
        result = run_with(NaivePolicy(), company_db)
        assert result.validations >= 3

    def test_optimal_never_needs_more_than_naive(self, company_db):
        naive = run_with(NaivePolicy(), company_db)
        optimal = run_with(OptimalPolicy(), company_db)
        assert optimal.validations <= naive.validations

    def test_optimal_is_lower_bound_for_heuristics(self, company_db, estimator):
        optimal = run_with(OptimalPolicy(), company_db)
        for policy in (PathLengthPolicy(), BayesianPolicy()):
            heuristic = run_with(policy, company_db, estimator)
            assert heuristic.validations >= optimal.validations

    def test_implied_outcomes_are_reported(self, company_db):
        # A failing shared probe implies failures of larger filters.
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [ExactValue("Engineering"), ExactValue("No Such Project")]
        )
        result_filter = None
        filter_set = build_filters(spec, build_candidates())
        validator = FilterValidator(Executor(company_db), spec)
        result_filter = ValidationDriver(
            filter_set, validator, PathLengthPolicy()
        ).run()
        assert result_filter.confirmed_candidate_ids == []
        assert result_filter.validations + result_filter.implied_outcomes >= 3

    def test_bayesian_policy_requires_estimator(self, company_db):
        with pytest.raises(DiscoveryError):
            run_with(BayesianPolicy(), company_db, estimator=None)

    def test_scheduling_result_reports_num_confirmed(self, company_db):
        result = run_with(NaivePolicy(), company_db)
        assert result.num_confirmed == len(result.confirmed_candidate_ids)
        assert result.elapsed_seconds >= 0.0

    def test_disjunctive_cells_are_handled_by_all_policies(self, company_db, estimator):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [OneOf(["Engineering", "Research"]), ExactValue("Schema Mapping")]
        )
        for policy in (NaivePolicy(), PathLengthPolicy(), OptimalPolicy()):
            result = run_with(policy, company_db, spec=spec)
            assert result.confirmed_candidate_ids == [2]
        bayes = run_with(BayesianPolicy(), company_db, estimator, spec=spec)
        assert bayes.confirmed_candidate_ids == [2]
