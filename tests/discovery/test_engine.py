"""End-to-end tests for the Prism engine facade."""

from __future__ import annotations

import pytest

from repro.constraints.metadata import MetadataField, MetadataPredicate
from repro.constraints.parser import parse_metadata_constraint, parse_value_constraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf, Range
from repro.dataset.schema import ColumnRef
from repro.discovery.engine import Prism
from repro.errors import DiscoveryError, DiscoveryTimeout, SpecError
from repro.query.sql import to_sql


class TestCompanyDiscovery:
    def test_exact_single_table_mapping(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), ExactValue(120000)])
        result = company_prism.discover(spec)
        assert result.num_queries >= 1
        sqls = result.sql()
        assert any(
            "Employee.Name" in sql and "Employee.Salary" in sql for sql in sqls
        )

    def test_cross_table_mapping_requires_correct_join(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        result = company_prism.discover(spec)
        assert result.num_queries >= 1
        # Every returned mapping must join up to the Project table (the only
        # place 'Query Optimizer' lives), and at least one mapping must route
        # through the Department relation itself.
        assert all("Project" in query.tables for query in result.queries)
        assert any(
            {"Department", "Project"} <= set(query.tables) for query in result.queries
        )

    def test_results_satisfy_all_samples(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Alice Chen")])
        spec.add_sample_cells([ExactValue("Research"), ExactValue("Eve Gupta")])
        result = company_prism.discover(spec)
        assert result.num_queries >= 1
        executor = company_prism.executor
        for query in result.queries:
            rows = executor.execute(query)
            for sample in spec.samples:
                assert sample.satisfied_by_result(rows)

    def test_impossible_spec_returns_empty_result(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Nonexistent")])
        result = company_prism.discover(spec)
        assert result.is_empty
        assert result.best() is None

    def test_metadata_only_spec(self, company_prism):
        spec = MappingSpec(1)
        spec.set_metadata(
            0, MetadataPredicate(MetadataField.COLUMN_NAME, "==", "Budget")
        )
        result = company_prism.discover(spec)
        projected = {query.projections[0] for query in result.queries}
        assert ColumnRef("Department", "Budget") in projected
        assert ColumnRef("Project", "Budget") in projected

    def test_medium_resolution_constraints(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [OneOf(["Detroit", "Chicago"]), Range(60_000, 80_000)]
        )
        result = company_prism.discover(spec)
        assert result.num_queries >= 1
        executor = company_prism.executor
        for query in result.queries:
            rows = executor.execute(query)
            assert spec.samples[0].satisfied_by_result(rows)

    def test_results_sorted_by_join_size(self, company_prism):
        spec = MappingSpec(1)
        spec.add_sample_cells([ExactValue("Engineering")])
        result = company_prism.discover(spec)
        sizes = [query.join_size for query in result.queries]
        assert sizes == sorted(sizes)

    def test_stats_are_populated(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        result = company_prism.discover(spec)
        stats = result.stats
        assert stats.num_candidates >= result.num_queries
        assert stats.num_filters > 0
        assert stats.validations > 0
        assert stats.elapsed_seconds > 0
        assert stats.scheduler_name == "bayesian"
        assert stats.as_dict()["candidates"] == stats.num_candidates

    def test_describe_lists_queries(self, company_prism):
        spec = MappingSpec(1)
        spec.add_sample_cells([ExactValue("Engineering")])
        result = company_prism.discover(spec)
        text = result.describe()
        assert "satisfying schema mapping" in text
        assert "SELECT" in text


class TestSchedulersThroughEngine:
    @pytest.mark.parametrize("scheduler", ["naive", "filter", "bayesian", "optimal"])
    def test_every_scheduler_finds_the_same_queries(self, company_prism, scheduler):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        result = company_prism.discover(spec, scheduler=scheduler)
        sqls = sorted(to_sql(query) for query in result.queries)
        baseline = sorted(
            to_sql(query) for query in company_prism.discover(spec, scheduler="naive").queries
        )
        assert sqls == baseline
        assert result.stats.scheduler_name in (scheduler, "filter", "bayesian",
                                               "naive", "optimal")

    def test_bayesian_without_models_raises(self, company_db_session):
        engine = Prism(company_db_session, train_bayesian=False)
        spec = MappingSpec(1).add_sample_cells([ExactValue("Engineering")])
        with pytest.raises(DiscoveryError):
            engine.discover(spec, scheduler="bayesian")
        # But the other schedulers still work.
        assert engine.discover(spec, scheduler="filter").num_queries >= 1


class TestValidationAndTimeouts:
    def test_empty_spec_rejected(self, company_prism):
        with pytest.raises(SpecError):
            company_prism.discover(MappingSpec(2))

    def test_invalid_time_limit_rejected(self, company_db_session):
        with pytest.raises(DiscoveryError):
            Prism(company_db_session, time_limit=0)

    def test_tiny_time_limit_reports_timeout(self, company_db_session):
        engine = Prism(company_db_session, train_bayesian=False)
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), None])
        result = engine.discover(spec, scheduler="filter", time_limit=1e-9)
        assert result.timed_out

    def test_raise_on_timeout(self, company_db_session):
        engine = Prism(company_db_session, train_bayesian=False)
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), None])
        with pytest.raises(DiscoveryTimeout):
            engine.discover(
                spec, scheduler="filter", time_limit=1e-9, raise_on_timeout=True
            )


class TestIntrospectionHelpers:
    def test_related_columns_helper(self, company_prism):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Engineering")])
        related = company_prism.related_columns(spec)
        assert related.columns_for(0)

    def test_candidate_queries_helper(self, company_prism):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Engineering")])
        candidates = company_prism.candidate_queries(spec)
        assert candidates
        assert all(candidate.query.width == 1 for candidate in candidates)


class TestMondialMotivatingExample:
    def test_lake_tahoe_walkthrough_recovers_paper_query(self, mondial_prism):
        spec = MappingSpec(3)
        spec.add_sample_cells(
            [
                parse_value_constraint("California || Nevada"),
                parse_value_constraint("Lake Tahoe"),
                None,
            ]
        )
        spec.set_metadata(
            2, parse_metadata_constraint("DataType=='decimal' AND MinValue>=0")
        )
        result = mondial_prism.discover(spec)
        assert result.num_queries >= 1
        target = (
            "SELECT geo_lake.Province, Lake.Name, Lake.Area "
            "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
        )
        assert target in result.sql()

    def test_lake_tahoe_exact_area_also_works(self, mondial_prism):
        spec = MappingSpec(3)
        spec.add_sample_cells(
            [
                ExactValue("California"),
                ExactValue("Lake Tahoe"),
                ExactValue(497.0),
            ]
        )
        result = mondial_prism.discover(spec)
        assert any(
            "Lake.Area" in sql and "geo_lake.Province" in sql for sql in result.sql()
        )


class TestCacheObservability:
    def test_discovery_stats_surface_executor_cache_counters(self, company_db):
        engine = Prism(company_db)
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [ExactValue("Engineering"), ExactValue("Query Optimizer")]
        )
        first = engine.discover(spec)
        stats = first.stats.as_dict()
        for key in (
            "exists_cache_hits",
            "exists_cache_misses",
            "join_index_hits",
            "join_index_builds",
        ):
            assert key in stats
        # The validation stage runs real probes on a cold cache.
        assert first.stats.exists_cache_misses > 0

        # A repeated discovery on the same engine answers its probes from
        # the executor's existence memo and reuses cached join indexes.
        second = engine.discover(spec)
        assert second.stats.exists_cache_hits > 0
        assert second.stats.exists_cache_misses == 0
        assert second.stats.join_index_builds == 0
        assert second.queries == first.queries


class TestInjectedArtifacts:
    def _spec(self):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [ExactValue("Engineering"), ExactValue("Query Optimizer")]
        )
        return spec

    def test_from_artifacts_skips_preprocessing_and_matches(self, company_db):
        from repro.service import ArtifactStore

        bundle = ArtifactStore().get(company_db)
        engine = Prism.from_artifacts(bundle)
        # No artifact was rebuilt: the engine aliases the bundle's objects.
        assert engine.index is bundle.index
        assert engine.catalog is bundle.catalog
        assert engine.schema_graph is bundle.schema_graph
        assert engine.models is bundle.models
        baseline = Prism(company_db).discover(self._spec())
        shared = engine.discover(self._spec())
        assert shared.sql() == baseline.sql()

    def test_engines_over_one_bundle_have_private_executors(self, company_db):
        from repro.service import ArtifactStore

        bundle = ArtifactStore().get(company_db)
        first = Prism.from_artifacts(bundle)
        second = Prism.from_artifacts(bundle)
        assert first.executor is not second.executor
        first.discover(self._spec())
        # The sibling engine's executor stats are untouched.
        assert second.executor.stats.queries_executed == 0

    def test_partial_injection_builds_only_whats_missing(self, company_db):
        from repro.dataset.index import InvertedIndex

        index = InvertedIndex.build(company_db)
        engine = Prism(company_db, index=index, train_bayesian=False)
        assert engine.index is index
        assert engine.catalog.built_from == company_db.artifact_key()
