"""Unit tests for filter decomposition and the dependency DAG."""

from __future__ import annotations

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.discovery.candidates import CandidateQuery
from repro.discovery.filters import build_filters
from repro.query.pj_query import ProjectJoinQuery


EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")


def chain_candidate(candidate_id: int = 0) -> CandidateQuery:
    """Department.Name and Project.Title joined through Employee/Assignment."""
    query = ProjectJoinQuery(
        (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
        (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
    )
    return CandidateQuery(id=candidate_id, query=query)


def single_table_candidate(candidate_id: int = 0) -> CandidateQuery:
    query = ProjectJoinQuery(
        (ColumnRef("Employee", "Name"), ColumnRef("Employee", "Salary"))
    )
    return CandidateQuery(id=candidate_id, query=query)


def spec_two_columns() -> MappingSpec:
    spec = MappingSpec(2)
    spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
    return spec


class TestDecomposition:
    def test_single_table_candidate_has_one_filter(self):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), ExactValue(120000)])
        filter_set = build_filters(spec, [single_table_candidate()])
        assert filter_set.num_filters == 1
        only = filter_set.filters[0]
        assert only.positions == (0, 1)
        assert only.join_size == 0
        assert filter_set.candidate_tops[0][0] == only.id

    def test_chain_candidate_produces_subtree_filters(self):
        filter_set = build_filters(spec_two_columns(), [chain_candidate()])
        # Sub-filters include the single-table probes on Department and
        # Project plus growing subtrees and the full top filter.
        sizes = {filter_.num_tables for filter_ in filter_set.filters}
        assert 1 in sizes and 4 in sizes
        top_id = filter_set.candidate_tops[0][0]
        top = filter_set.filter(top_id)
        assert top.num_tables == 4
        assert top.positions == (0, 1)

    def test_subtrees_without_constrained_columns_are_skipped(self):
        filter_set = build_filters(spec_two_columns(), [chain_candidate()])
        for filter_ in filter_set.filters:
            assert filter_.positions, "every filter must check at least one cell"

    def test_filters_are_shared_between_candidates(self):
        first = chain_candidate(0)
        # Second candidate: same Department projection, different second column
        # but sharing the Department single-table probe.
        second_query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Employee", "Name")),
            (EMP_DEPT,),
        )
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Alice")])
        filter_set = build_filters(spec, [first, CandidateQuery(1, second_query)])
        shared = [
            filter_
            for filter_ in filter_set.filters
            if filter_.candidate_ids == {0, 1}
        ]
        assert shared, "the Department-only probe should be shared"

    def test_one_filter_group_per_sample(self):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        spec.add_sample_cells([ExactValue("Research"), ExactValue("Schema Mapping")])
        filter_set = build_filters(spec, [chain_candidate()])
        samples = {filter_.sample_index for filter_ in filter_set.filters}
        assert samples == {0, 1}
        assert set(filter_set.candidate_tops[0]) == {0, 1}

    def test_no_samples_means_no_filters(self):
        spec = MappingSpec(2)
        filter_set = build_filters(spec, [chain_candidate()])
        assert filter_set.num_filters == 0

    def test_partial_sample_only_constrains_its_positions(self):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), None])
        filter_set = build_filters(spec, [chain_candidate()])
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        assert top.positions == (0,)


class TestContainment:
    def test_ancestors_and_descendants(self):
        filter_set = build_filters(spec_two_columns(), [chain_candidate()])
        top_id = filter_set.candidate_tops[0][0]
        single_table = [
            filter_
            for filter_ in filter_set.filters
            if filter_.num_tables == 1 and filter_.positions == (0,)
        ]
        assert single_table
        probe = single_table[0]
        assert top_id in filter_set.ancestors(probe.id)
        assert probe.id in filter_set.descendants(top_id)

    def test_containment_requires_same_sample(self):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
        spec.add_sample_cells([ExactValue("Research"), ExactValue("Schema Mapping")])
        filter_set = build_filters(spec, [chain_candidate()])
        for filter_ in filter_set.filters:
            for ancestor_id in filter_set.ancestors(filter_.id):
                assert filter_set.filter(ancestor_id).sample_index == filter_.sample_index

    def test_contains_is_reflexive_on_structure_but_excluded_from_dag(self):
        filter_set = build_filters(spec_two_columns(), [chain_candidate()])
        for filter_ in filter_set.filters:
            assert filter_.contains(filter_)
            assert filter_.id not in filter_set.ancestors(filter_.id)
            assert filter_.id not in filter_set.descendants(filter_.id)

    def test_top_filter_ids(self):
        filter_set = build_filters(spec_two_columns(), [chain_candidate()])
        tops = filter_set.top_filter_ids()
        assert filter_set.candidate_tops[0][0] in tops
