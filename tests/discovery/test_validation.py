"""Unit tests for filter validation."""

from __future__ import annotations

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf, Range
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.discovery.candidates import CandidateQuery
from repro.discovery.filters import build_filters
from repro.discovery.validation import FilterValidator
from repro.query.executor import Executor
from repro.query.pj_query import ProjectJoinQuery


EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")


@pytest.fixture()
def validator_factory(company_db):
    def make(spec: MappingSpec) -> FilterValidator:
        return FilterValidator(Executor(company_db), spec)

    return make


def candidate() -> CandidateQuery:
    query = ProjectJoinQuery(
        (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
        (EMP_DEPT,),
    )
    return CandidateQuery(id=0, query=query)


class TestValidate:
    def test_matching_sample_passes(self, validator_factory):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Ann Arbor"), ExactValue("Alice Chen")])
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        assert validator.validate(top) is True

    def test_cross_table_mismatch_fails_even_if_cells_exist_separately(
        self, validator_factory
    ):
        # 'Chicago' and 'Alice Chen' both exist, but Alice is not in Chicago.
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Chicago"), ExactValue("Alice Chen")])
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        assert validator.validate(top) is False
        single_table = [f for f in filter_set.filters if f.num_tables == 1]
        assert all(validator.validate(f) for f in single_table)

    def test_disjunction_and_range_cells(self, validator_factory):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [OneOf(["Detroit", "Chicago"]), ExactValue("Carol Evans")]
        )
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        assert validator.validate(top) is True

    def test_unconstrained_cells_are_ignored(self, validator_factory):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Ann Arbor"), None])
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        assert validator.validate(top) is True


class TestCachingAndCounting:
    def test_validations_are_counted_once_per_filter(self, validator_factory):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Ann Arbor"), ExactValue("Alice Chen")])
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        validator.validate(top)
        validator.validate(top)
        assert validator.validations_performed == 1
        assert validator.stats.cache_hits == 1

    def test_peek_does_not_count(self, validator_factory):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Ann Arbor"), ExactValue("Alice Chen")])
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        top = filter_set.filter(filter_set.candidate_tops[0][0])
        assert validator.peek(top) is True
        assert validator.validations_performed == 0
        # A later counted validation reuses the cached outcome.
        assert validator.validate(top) is True
        assert validator.validations_performed == 0
        assert validator.stats.cache_hits == 1

    def test_pass_fail_counters(self, validator_factory):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Chicago"), ExactValue("Alice Chen")])
        filter_set = build_filters(spec, [candidate()])
        validator = validator_factory(spec)
        for filter_ in filter_set.filters:
            validator.validate(filter_)
        assert validator.stats.passed + validator.stats.failed == (
            validator.stats.validations
        )
        assert validator.stats.failed >= 1

    def test_range_cell_on_numeric_column(self, company_db):
        spec = MappingSpec(1)
        spec.add_sample_cells([Range(100_000, 130_000)])
        query = ProjectJoinQuery((ColumnRef("Employee", "Salary"),))
        filter_set = build_filters(spec, [CandidateQuery(0, query)])
        validator = FilterValidator(Executor(company_db), spec)
        assert validator.validate(filter_set.filters[0]) is True
