"""Unit tests for related-column discovery (pipeline step 1)."""

from __future__ import annotations

import pytest

from repro.constraints.metadata import MetadataField, MetadataPredicate
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf, Predicate, Range
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.index import InvertedIndex
from repro.dataset.schema import ColumnRef
from repro.discovery.related_columns import RelatedColumnFinder


@pytest.fixture()
def finder(company_db):
    return RelatedColumnFinder(
        company_db, InvertedIndex.build(company_db), MetadataCatalog.build(company_db)
    )


class TestValueConstraints:
    def test_exact_keyword_resolved_through_index(self, finder):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Engineering")])
        related = finder.find(spec)
        columns = related.columns_for(0)
        assert ColumnRef("Department", "Name") in columns
        assert ColumnRef("Employee", "Department") in columns
        assert ColumnRef("Project", "Title") not in columns

    def test_disjunction_unions_columns(self, finder):
        spec = MappingSpec(1).add_sample_cells([OneOf(["Engineering", "P3"])])
        columns = finder.find(spec).columns_for(0)
        assert ColumnRef("Project", "Code") in columns
        assert ColumnRef("Department", "Name") in columns

    def test_keyword_inside_longer_text_matches(self, finder):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Alice")])
        columns = finder.find(spec).columns_for(0)
        assert ColumnRef("Employee", "Name") in columns

    def test_range_constraint_uses_catalog_screen_and_scan(self, finder):
        spec = MappingSpec(1).add_sample_cells([Range(400, 520)])
        columns = finder.find(spec).columns_for(0)
        # Assignment.Hours has values 300..500; 420 and 460 and 500 fall in range.
        assert ColumnRef("Assignment", "Hours") in columns
        # Salaries are all >= 67000, so they cannot match.
        assert ColumnRef("Employee", "Salary") not in columns

    def test_inequality_predicate(self, finder):
        spec = MappingSpec(1).add_sample_cells([Predicate(">=", 1_000_000)])
        columns = finder.find(spec).columns_for(0)
        assert ColumnRef("Department", "Budget") in columns
        assert ColumnRef("Employee", "Age") not in columns

    def test_multiple_samples_intersect_columns(self, finder):
        spec = MappingSpec(1)
        spec.add_sample_cells([ExactValue("Engineering")])
        spec.add_sample_cells([ExactValue("Sales")])
        columns = finder.find(spec).columns_for(0)
        # Both values appear in Department.Name and Employee.Department.
        assert ColumnRef("Department", "Name") in columns
        spec_disjoint = MappingSpec(1)
        spec_disjoint.add_sample_cells([ExactValue("Engineering")])
        spec_disjoint.add_sample_cells([ExactValue("Query Optimizer")])
        assert finder.find(spec_disjoint).columns_for(0) == set()

    def test_unknown_value_yields_empty_set(self, finder):
        spec = MappingSpec(1).add_sample_cells([ExactValue("Nowhere Land")])
        related = finder.find(spec)
        assert related.columns_for(0) == set()
        assert not related.is_satisfiable()


class TestMetadataConstraints:
    def test_metadata_only_position_filters_catalog(self, finder):
        spec = MappingSpec(1)
        spec.set_metadata(
            0, MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal")
        )
        columns = finder.find(spec).columns_for(0)
        assert ColumnRef("Employee", "Salary") in columns
        assert ColumnRef("Employee", "Age") in columns  # int satisfies decimal
        assert ColumnRef("Employee", "Name") not in columns

    def test_metadata_narrows_value_matches(self, finder):
        spec = MappingSpec(1)
        spec.add_sample_cells([ExactValue("Engineering")])
        spec.set_metadata(
            0, MetadataPredicate(MetadataField.COLUMN_NAME, "==", "Name")
        )
        columns = finder.find(spec).columns_for(0)
        assert columns == {ColumnRef("Department", "Name")}

    def test_column_name_metadata(self, finder):
        spec = MappingSpec(1)
        spec.set_metadata(
            0, MetadataPredicate(MetadataField.COLUMN_NAME, "==", "Budget")
        )
        columns = finder.find(spec).columns_for(0)
        assert columns == {
            ColumnRef("Department", "Budget"),
            ColumnRef("Project", "Budget"),
        }


class TestStructure:
    def test_unconstrained_positions_are_omitted(self, finder):
        spec = MappingSpec(3)
        spec.add_sample_cells([ExactValue("Engineering"), None, None])
        related = finder.find(spec)
        assert related.constrained_positions() == [0]
        assert related.columns_for(1) == set()

    def test_all_tables_and_total_columns(self, finder):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Engineering"), ExactValue("P1")])
        related = finder.find(spec)
        assert "Department" in related.all_tables()
        assert "Assignment" in related.all_tables()
        assert related.total_columns == len(related.columns_for(0)) + len(
            related.columns_for(1)
        )
