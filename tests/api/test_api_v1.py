"""The v1 public API surface: one import point, working deprecation shims.

``repro.api`` is the stable façade; deep imports from ``repro.service``
and ``repro.workbench`` keep working for one release behind
:class:`DeprecationWarning` shims, and the pre-v1 keyword names
(``time_limit``, ``num_workers``, ``default_time_limit``) stay accepted
as warned aliases of the canonical ``deadline_s``/``workers``.
"""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.api


class TestV1Surface:
    def test_every_advertised_name_is_importable(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), f"repro.api.{name} missing"

    def test_core_names_are_advertised(self):
        assert {
            "API_VERSION",
            "ArtifactStore",
            "DiscoveryRequest",
            "DiscoveryResponse",
            "DiscoveryService",
            "DiscoveryTicket",
            "MappingSpec",
            "Prism",
            "PrismSession",
            "ShardAssignment",
            "WireFormatError",
            "demo_requests",
            "request_from_dict",
        } <= set(repro.api.__all__)
        assert repro.api.API_VERSION == 1

    def test_facade_exposes_the_implementation_classes(self):
        from repro.service.service import DiscoveryService
        from repro.workbench.session import PrismSession

        assert repro.api.DiscoveryService is DiscoveryService
        assert repro.api.PrismSession is PrismSession

    def test_top_level_package_reexports_the_service_types(self):
        for name in ("DiscoveryRequest", "DiscoveryResponse",
                     "DiscoveryService", "DiscoveryTicket",
                     "ServiceMetrics", "ArtifactStore", "PrismSession"):
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_importing_the_facade_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _ = repro.api.DiscoveryService
            _ = repro.DiscoveryRequest


class TestDeepImportShims:
    def test_repro_service_attribute_access_warns_but_works(self):
        import repro.service as legacy

        with pytest.warns(DeprecationWarning, match="repro.api"):
            service_cls = legacy.DiscoveryService
        assert service_cls is repro.api.DiscoveryService
        with pytest.warns(DeprecationWarning):
            assert legacy.ArtifactStore is repro.api.ArtifactStore
        with pytest.warns(DeprecationWarning):
            assert legacy.demo_requests is repro.api.demo_requests

    def test_repro_workbench_attribute_access_warns_but_works(self):
        import repro.workbench as legacy

        with pytest.warns(DeprecationWarning, match="repro.api"):
            session_cls = legacy.PrismSession
        assert session_cls is repro.api.PrismSession

    def test_shimmed_names_still_appear_in_dir(self):
        import repro.service as legacy

        listing = dir(legacy)
        assert "DiscoveryService" in listing
        assert "ArtifactStore" in listing

    def test_unknown_attribute_still_raises_attribute_error(self):
        import repro.service as legacy

        with pytest.raises(AttributeError):
            _ = legacy.NoSuchThing


class TestKeywordAliases:
    def _spec(self):
        spec = repro.api.MappingSpec(1)
        spec.add_sample_cells([repro.api.parse_value_constraint("x")])
        return spec

    def test_request_time_limit_alias_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="deadline_s"):
            request = repro.api.DiscoveryRequest(
                database="nba", spec=self._spec(), time_limit=7.0
            )
        assert request.deadline_s == 7.0
        with pytest.warns(DeprecationWarning, match="deadline_s"):
            assert request.time_limit == 7.0

    def test_canonical_request_kwargs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            request = repro.api.DiscoveryRequest(
                database="nba", spec=self._spec(), deadline_s=7.0
            )
        assert request.deadline_s == 7.0

    def test_service_constructor_aliases_warn_and_map(self, company_db):
        with pytest.warns(DeprecationWarning, match="workers"):
            svc = repro.api.DiscoveryService(
                databases={"company": company_db}, num_workers=2
            )
        try:
            assert svc._workers_count == 2
        finally:
            svc.shutdown()
        with pytest.warns(DeprecationWarning, match="default_deadline_s"):
            svc = repro.api.DiscoveryService(
                databases={"company": company_db}, default_time_limit=9.0
            )
        try:
            assert svc._default_deadline_s == 9.0
        finally:
            svc.shutdown()

    def test_demo_requests_time_limit_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="deadline_s"):
            requests = repro.api.demo_requests(time_limit=3.0)
        assert all(request.deadline_s == 3.0 for request in requests)

    def test_request_from_dict_accepts_both_deadline_spellings(self):
        base = {
            "database": "nba",
            "columns": 1,
            "samples": [["Lakers"]],
        }
        canonical = repro.api.request_from_dict({**base, "deadline_s": 4})
        legacy = repro.api.request_from_dict({**base, "time_limit": 4})
        assert canonical.deadline_s == legacy.deadline_s == 4.0
