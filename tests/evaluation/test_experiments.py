"""Integration tests for the experiment runners (small, fast configurations).

These exercise every experiment in DESIGN.md's per-experiment index on the
small company database so the whole harness stays fast; the benchmarks run
the same code on Mondial at full size.
"""

from __future__ import annotations

import pytest

from repro.discovery.candidates import GenerationLimits
from repro.evaluation.experiments import (
    aggregate_resolution_sweep,
    aggregate_scheduler_comparison,
    build_cases,
    run_baseline_comparison,
    run_metadata_ablation,
    run_resolution_sweep,
    run_scalability_sweep,
    run_scheduler_comparison,
)
from repro.workloads.degrade import ResolutionLevel

LIMITS = GenerationLimits(max_candidates=150, max_assignments=300)


@pytest.fixture(scope="module")
def cases(company_db_session):
    return build_cases(company_db_session, count=2, num_columns=2, num_tables=2, seed=3)


class TestResolutionSweep:
    def test_rows_cover_every_case_and_level(self, company_db_session, cases):
        levels = (ResolutionLevel.EXACT, ResolutionLevel.DISJUNCTION)
        rows = run_resolution_sweep(
            company_db_session, cases, levels=levels, limits=LIMITS
        )
        assert len(rows) == len(cases) * len(levels)
        assert {row["level"] for row in rows} == {"exact", "disjunct"}
        assert all(row["num_queries"] >= 1 for row in rows)
        assert all(row["found_ground_truth"] for row in rows)

    def test_aggregation_produces_one_row_per_level(self, company_db_session, cases):
        levels = (ResolutionLevel.EXACT, ResolutionLevel.PARTIAL)
        rows = run_resolution_sweep(
            company_db_session, cases, levels=levels, limits=LIMITS
        )
        summary = aggregate_resolution_sweep(rows)
        assert [row["level"] for row in summary] == ["exact", "partial"]
        for row in summary:
            assert row["cases"] == len(cases)
            assert row["ground_truth_rate"] == 1.0
            assert row["mean_elapsed_seconds"] > 0


class TestSchedulerComparison:
    def test_prism_sits_between_filter_and_optimal(self, company_db_session, cases):
        rows = run_scheduler_comparison(
            company_db_session, cases, level=ResolutionLevel.EXACT, limits=LIMITS
        )
        assert len(rows) == len(cases)
        for row in rows:
            assert row["validations_optimal"] <= row["validations_bayesian"]
            assert row["validations_optimal"] <= row["validations_filter"]
            # All schedulers must return the same number of queries.
            assert row["queries_filter"] == row["queries_bayesian"]
            assert row["queries_filter"] == row["queries_optimal"]

    def test_aggregation_reports_gap_reduction(self, company_db_session, cases):
        rows = run_scheduler_comparison(
            company_db_session, cases, level=ResolutionLevel.EXACT, limits=LIMITS
        )
        summary = aggregate_scheduler_comparison(rows)
        assert summary["cases"] == len(cases)
        assert 0.0 <= summary["mean_gap_reduction"] <= 1.0
        assert summary["mean_validations_optimal"] <= summary["mean_validations_filter"]


class TestScalabilitySweep:
    def test_rows_cover_requested_grid(self, company_db_session):
        rows = run_scalability_sweep(
            company_db_session,
            widths=(2,),
            table_counts=(1, 2),
            cases_per_config=1,
            limits=LIMITS,
        )
        assert len(rows) == 2
        assert {row["tables"] for row in rows} == {1, 2}
        assert all(row["elapsed_seconds"] > 0 for row in rows)

    def test_width_smaller_than_tables_is_skipped(self, company_db_session):
        rows = run_scalability_sweep(
            company_db_session,
            widths=(2,),
            table_counts=(3,),
            cases_per_config=1,
            limits=LIMITS,
        )
        assert rows == []


class TestBaselineComparison:
    def test_baseline_only_supports_exact_level(self, company_db_session, cases):
        rows = run_baseline_comparison(
            company_db_session,
            cases,
            levels=(ResolutionLevel.EXACT, ResolutionLevel.SPARSE),
            limits=LIMITS,
        )
        by_level = {}
        for row in rows:
            by_level.setdefault(row["level"], []).append(row)
        assert all(row["baseline_supported"] for row in by_level["exact"])
        assert all(not row["baseline_supported"] for row in by_level["sparse"])
        # Prism keeps finding the ground truth even at the sparse level.
        assert all(row["prism_found_truth"] for row in by_level["exact"])

    def test_prism_matches_baseline_on_exact_specs(self, company_db_session, cases):
        rows = run_baseline_comparison(
            company_db_session, cases, levels=(ResolutionLevel.EXACT,), limits=LIMITS
        )
        for row in rows:
            assert row["baseline_found_truth"] == row["prism_found_truth"]


class TestMetadataAblation:
    def test_metadata_restricts_candidates(self, company_db_session, cases):
        rows = run_metadata_ablation(company_db_session, cases, limits=LIMITS)
        assert len(rows) == 2 * len(cases)
        for case in cases:
            with_metadata = next(
                row for row in rows
                if row["case"] == case.case_id and row["variant"] == "with_metadata"
            )
            without_metadata = next(
                row for row in rows
                if row["case"] == case.case_id and row["variant"] == "without_metadata"
            )
            assert with_metadata["candidates"] <= without_metadata["candidates"]
            assert with_metadata["num_queries"] <= without_metadata["num_queries"]
