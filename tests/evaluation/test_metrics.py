"""Unit tests for evaluation metrics and text reporting."""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import (
    gap_reduction,
    gap_to_optimal,
    mean,
    median,
    summarize,
)
from repro.evaluation.reporting import format_table, format_value


class TestGapMetrics:
    def test_gap_to_optimal(self):
        assert gap_to_optimal(130, 100) == 30
        assert gap_to_optimal(100, 100) == 0
        # A scheduler can never beat the oracle, but guard against noise.
        assert gap_to_optimal(90, 100) == 0

    def test_gap_reduction_full_and_partial(self):
        assert gap_reduction(200, 100, 100) == pytest.approx(1.0)
        assert gap_reduction(200, 150, 100) == pytest.approx(0.5)
        assert gap_reduction(200, 200, 100) == pytest.approx(0.0)

    def test_gap_reduction_undefined_when_baseline_is_optimal(self):
        assert gap_reduction(100, 100, 100) is None

    def test_gap_reduction_matches_paper_shape(self):
        # "up to ~70%": baseline gap 100, prism gap 30.
        assert gap_reduction(200, 130, 100) == pytest.approx(0.7)


class TestSummaryStatistics:
    def test_mean_and_median(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)
        assert median([1, 2, 100]) == 2
        assert mean([]) == 0.0
        assert median([]) == 0.0

    def test_mean_accepts_generators(self):
        assert mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)

    def test_summarize(self):
        summary = summarize([4.0, 1.0, 3.0])
        assert summary["mean"] == pytest.approx(8 / 3)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["count"] == 3

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(1.23456) == "1.235"
        assert format_value("text") == "text"
        assert format_value(7) == "7"

    def test_format_table_alignment_and_headers(self):
        rows = [
            {"level": "exact", "time": 0.5, "queries": 3},
            {"level": "disjunct", "time": 0.75, "queries": 4},
        ]
        table = format_table(rows, title="E1")
        lines = table.splitlines()
        assert lines[0] == "E1"
        assert lines[1].startswith("level")
        assert len(lines) == 2 + 1 + 2  # title + header + separator + rows
        assert "disjunct" in lines[-1]

    def test_format_table_respects_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
        assert format_table([], title="T").startswith("T")

    def test_format_table_handles_missing_cells(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        table = format_table(rows)
        assert "-" in table.splitlines()[-1]
