"""The docs/ guide set stays present, linked and dead-link free.

The CI ``docs`` job runs the same checker standalone
(``python scripts/check_links.py``); running it here too keeps broken
links out of tier-1 locally.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

REQUIRED_GUIDES = [
    "architecture.md",
    "performance.md",
    "service.md",
    "incremental.md",
]


def _load_checker():
    path = REPO_ROOT / "scripts" / "check_links.py"
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_guide_set_is_complete():
    for name in REQUIRED_GUIDES:
        guide = DOCS_DIR / name
        assert guide.is_file(), f"missing guide: docs/{name}"
        assert guide.stat().st_size > 500, f"docs/{name} looks like a stub"


def test_readme_links_every_guide():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for name in REQUIRED_GUIDES:
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


def test_no_dead_links_in_readme_or_docs():
    checker = _load_checker()
    files = checker.default_files(REPO_ROOT)
    assert len(files) >= 1 + len(REQUIRED_GUIDES)
    errors = []
    for path in files:
        errors.extend(checker.check_file(path))
    assert errors == []


def test_checker_flags_broken_links(tmp_path):
    checker = _load_checker()
    page = tmp_path / "page.md"
    page.write_text(
        "# Title\n\nsee [missing](nowhere.md) and [bad](#no-such-heading) "
        "and [ok](#title)\n",
        encoding="utf-8",
    )
    errors = checker.check_file(page)
    assert len(errors) == 2
    assert any("nowhere.md" in error for error in errors)
    assert any("no-such-heading" in error for error in errors)
