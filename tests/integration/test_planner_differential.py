"""Differential correctness of the planner path (ISSUE 5 satellite).

Property-style suite: randomized synthetic databases and candidate sets
run through the full planner/executor pipeline *and* through the retained
naive reference path (:mod:`repro.query.reference` — nested-loop joins,
no planner, no caches, no batching), asserting bit-for-bit identical
results at every level:

* executor vs reference on individual queries and predicate sets;
* batched existence probes vs per-probe reference outcomes;
* end-to-end discovery (batched, unbatched and across schedulers) vs a
  reference decision procedure that brute-forces every candidate.
"""

from __future__ import annotations

import random

import pytest

from repro.constraints.values import ExactValue, OneOf
from repro.datasets.synthetic import generate_synthetic_database
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import Prism
from repro.query.executor import BatchProbe, Executor
from repro.query.pj_query import ProjectJoinQuery
from repro.query.reference import execute_reference, exists_reference
from repro.query.sql import to_sql
from repro.workloads.degrade import ResolutionLevel, spec_for_level
from repro.workloads.generator import WorkloadGenerator

LIMITS = GenerationLimits(
    max_candidates=120, max_assignments=240, max_trees_per_assignment=5
)


def _random_queries(database, rng, count=12):
    """Random valid PJ queries over the database's foreign-key graph."""
    queries = []
    foreign_keys = list(database.foreign_keys)
    tables = database.table_names
    for __ in range(count):
        start = rng.choice(tables)
        joined = {start}
        edges = []
        for __ in range(rng.randint(0, 3)):
            frontier = [
                fk
                for fk in foreign_keys
                if (fk.child_table in joined) != (fk.parent_table in joined)
            ]
            if not frontier:
                break
            edge = rng.choice(frontier)
            edges.append(edge)
            joined.update(edge.tables())
        projections = []
        for table_name in sorted(joined):
            columns = database.table(table_name).columns
            projections.append(
                (table_name, rng.choice(columns).name)
            )
        rng.shuffle(projections)
        from repro.dataset.schema import ColumnRef

        queries.append(
            ProjectJoinQuery(
                tuple(ColumnRef(t, c) for t, c in projections),
                tuple(edges),
            )
        )
    return queries


def _random_predicates(database, query, rng):
    """Random cell predicates over a query's projections (half the time)."""
    predicates = {}
    for position, ref in enumerate(query.projections):
        if rng.random() < 0.5:
            continue
        values = [
            v
            for v in database.table(ref.table).column_values(ref.column)
            if v is not None
        ]
        if not values:
            continue
        if rng.random() < 0.7:
            wanted = rng.choice(values)
            predicates[position] = ExactValue(wanted).matches
        else:
            wanted = OneOf(rng.sample(values, k=min(3, len(values))))
            predicates[position] = wanted.matches
    return predicates


@pytest.mark.parametrize("topology,seed", [
    ("chain", 11), ("star", 23), ("random", 37),
])
class TestExecutorVsReference:
    def test_execute_matches_reference(self, topology, seed):
        database = generate_synthetic_database(
            num_tables=4, rows_per_table=40, topology=topology, seed=seed
        )
        rng = random.Random(seed)
        for query in _random_queries(database, rng):
            predicates = _random_predicates(database, query, rng)
            fast = Executor(database).execute(query, cell_predicates=predicates)
            naive = execute_reference(database, query, cell_predicates=predicates)
            assert sorted(map(repr, fast)) == sorted(map(repr, naive))

    def test_exists_batch_matches_reference(self, topology, seed):
        database = generate_synthetic_database(
            num_tables=4, rows_per_table=40, topology=topology, seed=seed
        )
        rng = random.Random(seed + 1)
        queries = _random_queries(database, rng, count=6)
        executor = Executor(database)
        for query in queries:
            probes = [
                BatchProbe(query, _random_predicates(database, query, rng))
                for __ in range(4)
            ]
            outcomes = executor.exists_batch(probes)
            expected = [
                exists_reference(database, p.query, p.cell_predicates)
                for p in probes
            ]
            assert outcomes == expected


def _reference_confirms(database, spec, query) -> bool:
    """Brute-force the paper's confirmation rule for one candidate."""
    if not spec.samples:
        return True
    for sample in spec.samples:
        predicates = {}
        constrained = [
            position
            for position in sample.constrained_positions()
            if position < query.width
        ]
        if not constrained:
            # No top filter for this sample: the driver never confirms.
            return False
        for position in constrained:
            predicates[position] = sample.cell(position).matches
        if not exists_reference(database, query, predicates):
            return False
    return True


@pytest.mark.parametrize("topology,seed", [
    ("chain", 5), ("star", 7), ("random", 13),
])
@pytest.mark.parametrize("level", [ResolutionLevel.EXACT, ResolutionLevel.MIXED])
class TestDiscoveryVsReference:
    def test_discovery_is_bit_for_bit_identical_to_reference(
        self, topology, seed, level
    ):
        database = generate_synthetic_database(
            num_tables=4, rows_per_table=40, topology=topology, seed=seed
        )
        engine = Prism(database, limits=LIMITS, time_limit=60.0)
        unbatched = Prism(
            database,
            limits=LIMITS,
            time_limit=60.0,
            batch_validation=False,
            train_bayesian=False,
            index=engine.index,
            catalog=engine.catalog,
            schema_graph=engine.schema_graph,
            models=engine.models,
        )
        generator = WorkloadGenerator(database, seed=seed)
        for case_index in range(2):
            case = generator.generate_case(num_columns=3, num_tables=2)
            spec = spec_for_level(
                case, level, database, catalog=engine.catalog, seed=seed
            )
            result = engine.discover(spec, scheduler="bayesian")
            assert not result.timed_out

            # The planner path agrees with itself without batching ...
            plain = unbatched.discover(spec, scheduler="bayesian")
            assert result.sql() == plain.sql()
            assert result.stats.validations == plain.stats.validations

            # ... and with the naive reference decision over the very
            # same candidate set.
            candidates = engine.candidate_queries(spec)
            reference_sqls = sorted(
                to_sql(candidate.query)
                for candidate in candidates
                if _reference_confirms(database, spec, candidate.query)
            )
            assert sorted(result.sql()) == reference_sqls
