"""End-to-end scenarios across the three demo databases.

Each test drives the full public API exactly the way the demo walk-through
(§3) describes: configure, describe constraints at several resolutions,
search, then explain the selected query.
"""

from __future__ import annotations

import pytest

from repro import (
    GenerationLimits,
    MappingSpec,
    Prism,
    PrismSession,
    parse_metadata_constraint,
    parse_value_constraint,
)
from repro.constraints.values import ExactValue, OneOf, Range


class TestMondialScenario:
    def test_full_demo_walkthrough(self, mondial_db):
        session = PrismSession(databases={"mondial": mondial_db})
        session.configure("mondial", num_columns=3, num_samples=1, use_metadata=True)
        session.set_sample_cell(0, 0, "California || Nevada")
        session.set_sample_cell(0, 1, "Lake Tahoe")
        session.set_metadata_constraint(2, "DataType=='decimal' AND MinValue>=0")
        result = session.search()
        assert result.num_queries >= 1
        target = (
            "SELECT geo_lake.Province, Lake.Name, Lake.Area "
            "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
        )
        sqls = result.sql()
        assert target in sqls
        session.select_query(sqls.index(target))
        explanation = session.explain(fmt="ascii")
        assert "geo_lake" in explanation and "Lake" in explanation
        assert "California || Nevada" in explanation

    def test_looser_constraints_still_contain_target_query(self, mondial_prism):
        spec = MappingSpec(3)
        spec.add_sample_cells(
            [
                OneOf(["California", "Nevada"]),
                ExactValue("Lake Tahoe"),
                Range(400, 600),
            ]
        )
        result = mondial_prism.discover(spec)
        target = (
            "SELECT geo_lake.Province, Lake.Name, Lake.Area "
            "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
        )
        assert target in result.sql()

    def test_all_results_actually_satisfy_the_spec(self, mondial_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [parse_value_constraint("Crater Lake"), parse_value_constraint("[500, 700]")]
        )
        result = mondial_prism.discover(spec)
        executor = mondial_prism.executor
        assert result.num_queries >= 1
        for query in result.queries:
            rows = executor.execute(query)
            assert spec.samples[0].satisfied_by_result(rows)


class TestImdbScenario:
    @pytest.fixture(scope="class")
    def imdb_prism(self, imdb_db):
        return Prism(imdb_db, limits=GenerationLimits(max_candidates=300))

    def test_actor_movie_mapping(self, imdb_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [ExactValue("Leonardo DiCaprio"), ExactValue("Inception")]
        )
        result = imdb_prism.discover(spec)
        assert result.num_queries >= 1
        assert any("Cast" in query.tables for query in result.queries)

    def test_metadata_constraint_restricts_to_numeric_columns(self, imdb_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("The Dark Knight"), None])
        spec.set_metadata(
            1, parse_metadata_constraint("DataType=='decimal' AND MaxValue<=10")
        )
        result = imdb_prism.discover(spec)
        assert result.num_queries >= 1
        for query in result.queries:
            assert query.projections[1].column == "Rating"

    def test_year_range_constraint(self, imdb_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Parasite"), Range(2015, 2023)])
        result = imdb_prism.discover(spec)
        assert result.num_queries >= 1
        executor = imdb_prism.executor
        for query in result.queries:
            assert spec.samples[0].satisfied_by_result(executor.execute(query))


class TestNbaScenario:
    @pytest.fixture(scope="class")
    def nba_prism(self, nba_db):
        return Prism(nba_db, limits=GenerationLimits(max_candidates=300))

    def test_player_team_city_mapping(self, nba_prism):
        spec = MappingSpec(3)
        spec.add_sample_cells(
            [
                ExactValue("LeBron James"),
                ExactValue("Lakers"),
                ExactValue("Los Angeles"),
            ]
        )
        result = nba_prism.discover(spec)
        assert result.num_queries >= 1
        best = result.best()
        assert {"Player", "Team"} <= set(best.tables)

    def test_disjunctive_conference_constraint(self, nba_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [OneOf(["Celtics", "Bulls"]), OneOf(["East", "West"])]
        )
        result = nba_prism.discover(spec)
        assert result.num_queries >= 1

    def test_scheduler_agreement_on_nba(self, nba_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Giannis Antetokounmpo"), ExactValue("Bucks")])
        sqls = {}
        for scheduler in ("naive", "filter", "bayesian", "optimal"):
            sqls[scheduler] = sorted(
                nba_prism.discover(spec, scheduler=scheduler).sql()
            )
        assert len({tuple(v) for v in sqls.values()}) == 1
