"""Randomized differential harness: python vs numpy backend vs reference.

The NumPy kernel backend (ISSUE 9 tentpole) is only trustworthy if it is
*observationally identical* to the pure-Python :class:`ColumnStore` — not
"close", but bit for bit, including the executor's accounting counters.
This suite proves that the same way the planner was proven
(:mod:`tests.integration.test_planner_differential`): seeded random
databases built cell-for-cell identically on both backends, random
project-join workloads over them, and three-way equality against the
naive reference oracle (:mod:`repro.query.reference`) at every level —

* ``execute`` / ``exists`` / ``exists_batch`` outcomes, with full
  :class:`~repro.query.executor.ExecutionStats` equality between the two
  executors (the kernel path is accounting-transparent by design);
* the same equalities again **after randomized append sequences** are
  applied identically to both databases (long-lived executors span the
  appends, so join-index invalidation and kernel revalidation are under
  test, not just cold caches);
* end-to-end discovery: identical SQL and identical non-timing stats
  across backends, and identical SQL to a brute-force reference decision
  over the same candidate set;
* the incremental artifact path: ``ArtifactStore.refresh`` on a
  numpy-backed database matches a cold rebuild, and both match the
  python-backed equivalents.

The generated databases deliberately concentrate the storage edge cases:
NULLs in join keys and predicate columns, an empty table (which first
gains rows mid-test), a single-row table, unicode text, duplicate
low-cardinality join keys (int *and* text), dangling foreign keys, and
numeric-looking TEXT values.  ``KERNEL_MIN_ROWS`` is pinned to 0 so the
tiny test tables still take the kernel path wherever it is eligible.

Actual ``float('nan')`` cells are deliberately absent: the python store
preserves object identity (making ``nan in [nan]`` membership true)
while any array store must round-trip through C doubles — NaN columns
are therefore *excluded* from the kernel path entirely, which
``tests/storage`` covers directly.
"""

from __future__ import annotations

import random

import pytest

import repro.query.executor as executor_module
from repro.dataset import Column, Database, DataType
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import Prism
from repro.query.executor import BatchProbe, Executor
from repro.query.reference import execute_reference, exists_reference
from repro.query.sql import to_sql
from repro.api import ArtifactStore
from repro.storage import BACKEND_ENV_VAR, make_backend
from repro.workloads.degrade import ResolutionLevel, spec_for_level
from repro.workloads.generator import WorkloadGenerator
from repro.datasets.synthetic import generate_synthetic_database
from tests.conftest import build_company_database
from tests.integration.test_planner_differential import (
    _random_predicates,
    _random_queries,
    _reference_confirms,
)
from tests.service.test_artifact_refresh import (
    _append_random_batch,
    _assert_bundles_equivalent,
    _specs,
)

_BACKENDS = ("python", "numpy")

# The acceptance bar: >= 20 seeded random databases, each also exercised
# in its post-append (delta) states.
_SEEDS = list(range(20))

# Unicode-heavy, deliberately collision-prone text vocabulary.
_NAMES = [
    "Ada", "ada", "café", "CAFÉ", "北京", "naïve", "Ω-mega", "O'Brien",
    "zulu", "",
]
# Numeric/boolean-*looking* TEXT values (they stay strings end to end).
_CODES = ["1", "2", "3", "0123", "3.14", "true", "False", "NaN"]
_KINDS = ["café", "北京", "naïve", "Ω"]


@pytest.fixture(autouse=True)
def force_kernels(monkeypatch):
    """Tiny differential databases must still exercise the kernel path."""
    monkeypatch.setattr(executor_module, "KERNEL_MIN_ROWS", 0)


# ----------------------------------------------------------------------
# Seeded edge-case database pairs
# ----------------------------------------------------------------------
def _maybe(rng: random.Random, value, null_probability: float = 0.15):
    return None if rng.random() < null_probability else value


def _person_row(rng: random.Random, row_id: int) -> tuple:
    return (
        row_id,
        _maybe(rng, rng.choice(_NAMES)),
        _maybe(rng, rng.choice(_CODES), 0.1),
        _maybe(rng, round(rng.uniform(-50.0, 50.0), 2), 0.2),
        _maybe(rng, 0, 0.1),
    )


def _event_row(rng: random.Random, row_id: int, num_people: int) -> tuple:
    # person_id ranges past num_people: duplicate *and* dangling keys.
    return (
        row_id,
        _maybe(rng, rng.randrange(num_people + 4)),
        _maybe(rng, rng.choice(_KINDS), 0.1),
        _maybe(rng, rng.randrange(-5, 6)),
    )


def _tag_row(rng: random.Random, num_events: int) -> tuple:
    return (
        _maybe(rng, rng.randrange(num_events + 4)),
        _maybe(rng, rng.choice(_CODES), 0.1),
        _maybe(rng, rng.randrange(100)),
    )


def _empty_row(rng: random.Random, row_id: int) -> tuple:
    return (row_id, _maybe(rng, 0), _maybe(rng, rng.choice(_NAMES)))


def _content(rng: random.Random) -> dict[str, list[tuple]]:
    """One seeded database's rows — generated once, inserted per backend."""
    num_people = rng.randint(18, 30)
    num_events = rng.randint(24, 48)
    group_names = rng.sample(_CODES, k=rng.randint(4, len(_CODES)))
    group_names.append(rng.choice(group_names))  # a duplicate parent key
    return {
        "Hub": [(0, rng.choice(_NAMES))],  # the single-row table
        "Group": [
            (name, rng.randrange(1, 9)) for name in group_names
        ],
        "Person": [_person_row(rng, i) for i in range(num_people)],
        "Event": [
            _event_row(rng, i, num_people) for i in range(num_events)
        ],
        "Tag": [
            _tag_row(rng, num_events) for __ in range(rng.randint(24, 48))
        ],
        "Empty": [],  # gains its first rows only mid-test (post-append)
    }


def _build(kind: str, content: dict[str, list[tuple]]) -> Database:
    database = Database(f"diff-{kind}", backend=make_backend(kind))
    database.create_table("Hub", [
        Column("id", DataType.INT, primary_key=True),
        Column("name", DataType.TEXT),
    ])
    database.create_table("Group", [
        Column("name", DataType.TEXT),
        Column("size", DataType.INT),
    ])
    database.create_table("Person", [
        Column("id", DataType.INT, primary_key=True),
        Column("name", DataType.TEXT),
        Column("code", DataType.TEXT),
        Column("score", DataType.DECIMAL),
        Column("hub_id", DataType.INT),
    ])
    database.create_table("Event", [
        Column("id", DataType.INT, primary_key=True),
        Column("person_id", DataType.INT),
        Column("kind", DataType.TEXT),
        Column("points", DataType.INT),
    ])
    database.create_table("Tag", [
        Column("event_id", DataType.INT),
        Column("label", DataType.TEXT),
        Column("weight", DataType.INT),
    ])
    database.create_table("Empty", [
        Column("id", DataType.INT),
        Column("hub_id", DataType.INT),
        Column("note", DataType.TEXT),
    ])
    for table_name, rows in content.items():
        database.table(table_name).insert_many(rows)
    database.link("Person.hub_id", "Hub.id")
    database.link("Person.code", "Group.name")  # text ⋈ text edge
    database.link("Event.person_id", "Person.id")
    database.link("Tag.event_id", "Event.id")
    database.link("Empty.hub_id", "Hub.id")
    return database


def _database_pair(seed: int) -> dict[str, Database]:
    content = _content(random.Random(seed))
    return {kind: _build(kind, content) for kind in _BACKENDS}


def _grow_identically(rng: random.Random, databases: list[Database]) -> None:
    """Apply one randomized append sequence to every database equally."""
    reference = databases[0]
    num_people = reference.table("Person").num_rows
    num_events = reference.table("Event").num_rows
    batch: dict[str, list[tuple]] = {
        "Person": [
            _person_row(rng, num_people + i)
            for i in range(rng.randint(1, 4))
        ],
        "Event": [
            _event_row(rng, num_events + i, num_people)
            for i in range(rng.randint(1, 5))
        ],
        "Tag": [_tag_row(rng, num_events) for __ in range(rng.randint(1, 5))],
        # The empty table gains its very first rows here: new dictionary
        # entries and join-index state created *after* caches are warm.
        "Empty": [_empty_row(rng, i) for i in range(rng.randint(0, 3))],
    }
    for database in databases:
        for table_name, rows in batch.items():
            database.table(table_name).insert_many(rows)


# ----------------------------------------------------------------------
# Executor-level triple equality (>= 20 seeds, pre- and post-append)
# ----------------------------------------------------------------------
def _assert_paths_agree(python_db, numpy_db, python_executor,
                        numpy_executor, workloads, batches) -> None:
    for query, predicates in workloads:
        fast = python_executor.execute(query, cell_predicates=predicates)
        vectorized = numpy_executor.execute(query, cell_predicates=predicates)
        naive = execute_reference(python_db, query, cell_predicates=predicates)
        assert vectorized == fast
        assert sorted(map(repr, fast)) == sorted(map(repr, naive))
        expected = exists_reference(numpy_db, query, predicates)
        assert python_executor.exists(query, cell_predicates=predicates) \
            == expected
        assert numpy_executor.exists(query, cell_predicates=predicates) \
            == expected
    for batch in batches:
        expected = [
            exists_reference(python_db, probe.query, probe.cell_predicates)
            for probe in batch
        ]
        assert python_executor.exists_batch(batch) == expected
        assert numpy_executor.exists_batch(batch) == expected
    # The kernel path must be invisible in the executor's accounting.
    assert numpy_executor.stats == python_executor.stats


@pytest.mark.parametrize("seed", _SEEDS)
def test_probe_paths_agree_across_backends(seed):
    pair = _database_pair(seed)
    python_db, numpy_db = pair["python"], pair["numpy"]
    rng = random.Random(seed * 1_000 + 17)
    queries = _random_queries(python_db, rng, count=8)
    workloads = [
        (query, _random_predicates(python_db, query, rng))
        for query in queries
    ]
    batches = [
        [
            BatchProbe(query, _random_predicates(python_db, query, rng))
            for __ in range(3)
        ]
        for query in queries[::2]
    ]

    # Long-lived executors: the second phase runs on warm plan caches,
    # join indexes and edge kernels that the appends must invalidate.
    python_executor, numpy_executor = Executor(python_db), Executor(numpy_db)
    _assert_paths_agree(python_db, numpy_db, python_executor,
                        numpy_executor, workloads, batches)

    grow_rng = random.Random(seed * 977 + 5)
    for __ in range(2):
        _grow_identically(grow_rng, [python_db, numpy_db])
        _assert_paths_agree(python_db, numpy_db, python_executor,
                            numpy_executor, workloads, batches)


# ----------------------------------------------------------------------
# Discovery-level equality (SQL + stats) across backends and reference
# ----------------------------------------------------------------------
_LIMITS = GenerationLimits(
    max_candidates=80, max_assignments=160, max_trees_per_assignment=4
)
_VOLATILE_STATS = (
    "elapsed_seconds",
    "related_column_seconds",
    "candidate_seconds",
    "validation_seconds",
)


@pytest.mark.parametrize("seed,level", [
    (11, ResolutionLevel.EXACT),
    (29, ResolutionLevel.MIXED),
    (53, ResolutionLevel.EXACT),
])
def test_discovery_is_identical_across_backends(seed, level):
    engines = {
        kind: Prism(
            generate_synthetic_database(
                num_tables=4,
                rows_per_table=40,
                topology="random",
                seed=seed,
                backend=make_backend(kind),
            ),
            limits=_LIMITS,
            time_limit=60.0,
        )
        for kind in _BACKENDS
    }
    python_engine, numpy_engine = engines["python"], engines["numpy"]
    python_db = generate_synthetic_database(
        num_tables=4, rows_per_table=40, topology="random", seed=seed,
        backend=make_backend("python"),
    )
    generator = WorkloadGenerator(python_db, seed=seed)
    for __ in range(2):
        case = generator.generate_case(num_columns=3, num_tables=2)
        spec = spec_for_level(
            case, level, python_db, catalog=python_engine.catalog, seed=seed
        )
        got = numpy_engine.discover(spec, scheduler="bayesian")
        want = python_engine.discover(spec, scheduler="bayesian")
        assert got.sql() == want.sql()

        got_stats, want_stats = got.stats.as_dict(), want.stats.as_dict()
        for volatile in _VOLATILE_STATS:
            got_stats.pop(volatile, None)
            want_stats.pop(volatile, None)
        assert got_stats == want_stats

        # Both agree with the brute-force reference decision over the
        # numpy engine's own candidate set — closing the triangle.
        reference_sqls = sorted(
            to_sql(candidate.query)
            for candidate in numpy_engine.candidate_queries(spec)
            if _reference_confirms(python_db, spec, candidate.query)
        )
        assert sorted(got.sql()) == reference_sqls


# ----------------------------------------------------------------------
# Sketch transparency: estimates steer, they never decide (ISSUE 10)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,level", [
    (11, ResolutionLevel.EXACT),
    (29, ResolutionLevel.MIXED),
])
def test_sketches_never_change_discovery_outcomes(seed, level):
    """Sketch-informed discovery returns bit-for-bit the sketch-free
    answer on adversarial (skewed, dangling-FK) data on both backends —
    the Bloom fast path and HLL estimates may reorder and prune work,
    but never an outcome."""
    def _adversarial_db(kind):
        return generate_synthetic_database(
            num_tables=4,
            rows_per_table=40,
            topology="random",
            seed=seed,
            skew=1.0,
            dangling_fk_fraction=0.4,
            backend=make_backend(kind),
        )

    python_db = _adversarial_db("python")
    spec_engine = Prism(python_db, limits=_LIMITS, time_limit=60.0)
    generator = WorkloadGenerator(python_db, seed=seed)
    specs = [
        spec_for_level(
            generator.generate_case(num_columns=3, num_tables=2),
            level, python_db, catalog=spec_engine.catalog, seed=seed,
        )
        for __ in range(2)
    ]

    sketch_estimates_used = 0
    for kind in _BACKENDS:
        sketched = Prism(_adversarial_db(kind), limits=_LIMITS,
                         time_limit=60.0)
        raw = Prism(
            sketched.database,
            limits=_LIMITS,
            time_limit=60.0,
            use_sketches=False,
            index=sketched.index,
            catalog=sketched.catalog,
            schema_graph=sketched.schema_graph,
            models=sketched.models,
        )
        for spec in specs:
            got = sketched.discover(spec, scheduler="bayesian")
            want = raw.discover(spec, scheduler="bayesian")
            assert got.sql() == want.sql()
            assert got.num_queries == want.num_queries
            sketch_estimates_used += got.stats.sketch_estimates_used
            # The raw engine must be genuinely sketch-free.
            assert want.stats.sketch_estimates_used == 0
            assert want.stats.bloom_rejections == 0
    assert sketch_estimates_used > 0


# ----------------------------------------------------------------------
# Incremental artifacts: refresh vs rebuild equivalence on numpy
# ----------------------------------------------------------------------
class TestNumpyRefreshEquivalence:
    @pytest.mark.parametrize("seed", [7, 41])
    def test_refresh_matches_cold_build_and_python_backend(
        self, seed, monkeypatch
    ):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        numpy_db = build_company_database()
        assert type(numpy_db.table("Employee")._backend).__name__ \
            == "NumpyColumnStore"
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        python_db = build_company_database()

        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(numpy_db)
        numpy_rng, python_rng = random.Random(seed), random.Random(seed)
        for __ in range(3):
            _append_random_batch(numpy_rng, numpy_db)
            _append_random_batch(python_rng, python_db)
            refreshed = store.refresh(numpy_db)
        assert store.stats.refreshes == 3
        assert store.stats.rebuild_fallbacks == 0
        assert store.stats.delta_rows_applied > 0

        # The numpy delta path matches a cold numpy build, and both
        # match the identically-grown python-backed database's build.
        cold = ArtifactStore().build(numpy_db)
        _assert_bundles_equivalent(refreshed, cold)
        python_cold = ArtifactStore().build(python_db)
        _assert_bundles_equivalent(refreshed, python_cold)

        for spec in _specs():
            got = Prism.from_artifacts(refreshed).discover(spec)
            want = Prism.from_artifacts(python_cold).discover(spec)
            assert got.sql() == want.sql()
            assert got.num_queries == want.num_queries
