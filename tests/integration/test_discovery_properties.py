"""Property-based tests of discovery invariants on synthetic databases.

The key soundness property of the whole system (the paper's problem
definition): every returned query's result must satisfy every constraint of
the spec.  We exercise it on randomly generated databases and randomly
chosen ground-truth rows, plus invariants of join-tree enumeration.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.dataset.schema_graph import SchemaGraph
from repro.datasets import generate_synthetic_database
from repro.discovery import GenerationLimits, Prism
from repro.query.executor import Executor

_LIMITS = GenerationLimits(max_candidates=60, max_assignments=120,
                           max_trees_per_assignment=4)

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def synthetic_database(draw):
    num_tables = draw(st.integers(min_value=2, max_value=4))
    topology = draw(st.sampled_from(["chain", "star", "random"]))
    seed = draw(st.integers(min_value=0, max_value=50))
    return generate_synthetic_database(
        num_tables=num_tables,
        rows_per_table=40,
        extra_columns=1,
        topology=topology,
        seed=seed,
    )


class TestDiscoverySoundness:
    @_SETTINGS
    @given(synthetic_database(), st.integers(min_value=0, max_value=39))
    def test_every_returned_query_satisfies_the_sample(self, database, row_index):
        table = database.table("T0")
        row = table.rows[row_index % table.num_rows]
        label = row[table.column_position("label")]
        spec = MappingSpec(1)
        spec.add_sample(SampleConstraint.from_values([label]))

        engine = Prism(database, limits=_LIMITS, train_bayesian=False)
        result = engine.discover(spec, scheduler="filter", time_limit=30)
        assert result.num_queries >= 1
        executor = Executor(database)
        for query in result.queries:
            rows = executor.execute(query)
            assert spec.samples[0].satisfied_by_result(rows)

    @_SETTINGS
    @given(synthetic_database())
    def test_schedulers_agree_on_synthetic_databases(self, database):
        table = database.table(database.table_names[-1])
        row = table.rows[0]
        label = row[table.column_position("label")]
        measure = row[table.column_position("measure")]
        spec = MappingSpec(2)
        spec.add_sample(SampleConstraint.from_values([label, measure]))

        engine = Prism(database, limits=_LIMITS)
        sqls = {
            scheduler: sorted(
                engine.discover(spec, scheduler=scheduler, time_limit=30).sql()
            )
            for scheduler in ("filter", "bayesian", "optimal")
        }
        assert sqls["filter"] == sqls["bayesian"] == sqls["optimal"]

    @_SETTINGS
    @given(synthetic_database())
    def test_optimal_never_exceeds_filter_validations(self, database):
        table = database.table(database.table_names[-1])
        label = table.rows[0][table.column_position("label")]
        spec = MappingSpec(1)
        spec.add_sample(SampleConstraint.from_values([label]))
        engine = Prism(database, limits=_LIMITS, train_bayesian=False)
        filter_result = engine.discover(spec, scheduler="filter", time_limit=30)
        optimal_result = engine.discover(spec, scheduler="optimal", time_limit=30)
        assert optimal_result.stats.validations <= filter_result.stats.validations
        assert sorted(optimal_result.sql()) == sorted(filter_result.sql())


class TestJoinTreeProperties:
    @_SETTINGS
    @given(synthetic_database(), st.data())
    def test_join_trees_span_required_tables_without_cycles(self, database, data):
        graph = SchemaGraph(database)
        tables = data.draw(
            st.sets(
                st.sampled_from(database.table_names), min_size=1, max_size=3
            )
        )
        for tree in graph.join_trees(tables, max_tables=4, max_trees=20):
            spanned = SchemaGraph.tree_tables(tree, default=next(iter(tables)))
            assert set(tables) <= spanned
            assert len(tree) == len(spanned) - 1 or (not tree and len(spanned) == 1)

    @_SETTINGS
    @given(synthetic_database())
    def test_executor_join_matches_nested_loop_semantics(self, database):
        # Compare the hash-join result against a brute-force nested loop on
        # the first foreign key of the database.
        fk = database.foreign_keys[0]
        from repro.dataset.schema import ColumnRef
        from repro.query.pj_query import ProjectJoinQuery

        child = database.table(fk.child_table)
        parent = database.table(fk.parent_table)
        query = ProjectJoinQuery(
            (
                ColumnRef(fk.child_table, "label"),
                ColumnRef(fk.parent_table, "label"),
            ),
            (fk,),
        )
        expected = []
        child_pos = child.column_position(fk.child_column)
        parent_pos = parent.column_position(fk.parent_column)
        child_label = child.column_position("label")
        parent_label = parent.column_position("label")
        for child_row in child.rows:
            for parent_row in parent.rows:
                if (
                    child_row[child_pos] is not None
                    and child_row[child_pos] == parent_row[parent_pos]
                ):
                    expected.append(
                        (child_row[child_label], parent_row[parent_label])
                    )
        actual = Executor(database).execute(query)
        assert sorted(actual) == sorted(expected)
