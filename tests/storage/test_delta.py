"""Unit tests for the storage layer's append-delta tracking."""

from __future__ import annotations

from repro.dataset.schema import Column
from repro.dataset.types import DataType
import pytest

from repro.storage import TableDelta, TableMark, make_backend
from repro.storage.delta import NO_DICTIONARY

# The delta contract is backend-observable behavior: both stores must
# mark, snapshot and reject identically.
_BACKENDS = ("python", "numpy")


@pytest.fixture(params=_BACKENDS)
def store_kind(request):
    return request.param


@pytest.fixture
def store(store_kind):
    return _store_with_rows(store_kind)


def _store_with_rows(kind="python"):
    store = make_backend(kind)
    store.register_table("T", [
        Column("Name", DataType.TEXT),
        Column("Score", DataType.INT, nullable=True),
    ])
    for row in [("alpha", 1), ("beta", None), ("alpha", 3)]:
        store.append_row("T", row)
    return store


class TestTableMark:
    def test_mark_captures_state(self, store):
        mark = store.table_mark("T")
        assert isinstance(mark, TableMark)
        assert mark.table == "T"
        assert mark.num_rows == 3
        assert mark.version == 3
        assert mark.column_count == 2
        assert mark.text_dict_lens == (2, NO_DICTIONARY)  # alpha, beta

    def test_base_backend_reports_no_capability(self):
        from repro.storage.backend import StorageBackend

        # The default implementations (used by exotic backends that never
        # override them) disable the delta path gracefully.
        assert StorageBackend.table_mark(object(), "T") is None
        assert StorageBackend.delta_since(object(), "T", None) is None


class TestDeltaSince:
    def test_empty_delta_for_unchanged_table(self, store):
        mark = store.table_mark("T")
        delta = store.delta_since("T", mark)
        assert isinstance(delta, TableDelta)
        assert delta.num_rows == 0
        assert delta.start_row == delta.end_row == 3

    def test_delta_covers_appended_rows_and_dictionary_entries(self, store):
        mark = store.table_mark("T")
        store.append_row("T", ("gamma", 4))
        store.append_row("T", ("alpha", None))
        delta = store.delta_since("T", mark)
        assert (delta.start_row, delta.end_row) == (3, 5)
        text, score = delta.columns
        assert text.values == ("gamma", "alpha")
        assert text.new_dictionary_entries == ("gamma",)
        assert text.codes == (2, 0)
        assert text.dict_len == 3
        assert score.values == (4, None)
        assert score.codes is None
        assert score.null_count == 1
        assert score.non_null_values == [4]
        # The new mark chains: a delta against it covers later appends only.
        store.append_row("T", ("delta", 5))
        chained = store.delta_since("T", delta.new_mark)
        assert (chained.start_row, chained.end_row) == (5, 6)
        assert chained.columns[0].new_dictionary_entries == ("delta",)

    def test_delta_values_are_snapshots(self, store):
        mark = store.table_mark("T")
        store.append_row("T", ("gamma", 4))
        delta = store.delta_since("T", mark)
        store.append_row("T", ("omega", 9))
        # The captured delta is unaffected by the later append.
        assert delta.end_row == 4
        assert delta.columns[0].values == ("gamma",)
        assert delta.columns[1].values == (4,)

    def test_mark_for_different_layout_is_rejected(self, store, store_kind):
        mark = store.table_mark("T")
        other = make_backend(store_kind)
        other.register_table("T", [Column("Name", DataType.TEXT)])
        other.append_row("T", ("x",))
        assert other.delta_since("T", mark) is None

    def test_drop_and_recreate_is_rejected(self, store):
        mark = store.table_mark("T")
        store.drop_table("T")
        store.register_table("T", [
            Column("Name", DataType.TEXT),
            Column("Score", DataType.INT, nullable=True),
        ])
        store.append_row("T", ("fresh", 1))
        # The recreated store has a different identity token (and here its
        # version is also behind the mark's): no delta.
        assert store.delta_since("T", mark) is None

    def test_drop_and_recreate_with_more_rows_is_rejected(self, store):
        mark = store.table_mark("T")
        store.drop_table("T")
        store.register_table("T", [
            Column("Name", DataType.TEXT),
            Column("Score", DataType.INT, nullable=True),
        ])
        for row in [("a", 1), ("b", 2), ("c", 3), ("d", 4)]:
            store.append_row("T", row)
        # Version arithmetic alone would read as one appended row (4 rows
        # vs the mark's 3, versions likewise); only the store token proves
        # the first three rows were replaced, not kept.
        assert store.delta_since("T", mark) is None

    def test_store_token_survives_pickling(self, store):
        import pickle

        mark = store.table_mark("T")
        copy = pickle.loads(pickle.dumps(store))
        # The unpickled copy shares the original's append lineage, so a
        # mark from the original remains a valid delta base for it.
        copy.append_row("T", ("delta", 9))
        delta = copy.delta_since("T", mark)
        assert delta is not None
        assert delta.num_rows == 1
        assert delta.columns[0].values == ("delta",)

    def test_mark_from_the_future_is_rejected(self, store, store_kind):
        future = store.table_mark("T")
        fresh = make_backend(store_kind)
        fresh.register_table("T", [
            Column("Name", DataType.TEXT),
            Column("Score", DataType.INT, nullable=True),
        ])
        assert fresh.delta_since("T", future) is None


class TestDatabaseDeltas:
    def test_storage_marks_and_deltas(self, company_db):
        marks = company_db.storage_marks()
        assert marks is not None
        assert set(marks) == set(company_db.table_names)
        assert company_db.storage_deltas_since(marks) == {}
        company_db.table("Department").insert(("Quality", "Flint", 50_000.0))
        deltas = company_db.storage_deltas_since(marks)
        assert set(deltas) == {"Department"}
        assert deltas["Department"].num_rows == 1

    def test_table_set_change_invalidates_marks(self, company_db):
        marks = company_db.storage_marks()
        company_db.create_table(
            "Extra", [Column("Id", DataType.INT)]
        )
        assert company_db.storage_deltas_since(marks) is None
