"""Properties and edge cases of the NumPy-backed storage backend.

The cross-backend contract suites (``test_column_store``, ``test_delta``,
``test_column_store_concurrency``) already run every shared behavior on
both stores.  This module covers what is specific to the array store:

* dictionary-code stability across appends (codes are immutable once
  assigned; the dictionary only ever grows at the tail);
* NULL-mask semantics — predicates are never shown a NULL, join indexes
  never contain one;
* int64 overflow → object-column promotion, transparent to readers and
  to the delta path;
* NaN float columns: excluded from the kernel path
  (:attr:`ColumnKernel.nan_unsafe`) while scans stay backend-identical;
* kernel snapshots — fresh identity after every append, stable decoded
  views;
* pickle round-trips across real process boundaries under the
  ``PRISM_TEST_START_METHODS`` fork/spawn matrix, with delta lineage
  surviving the hop;
* the stale-handle (drop → recreate) and ``insert_many`` failure-index
  behaviors, bit-for-bit identical to the python store;
* the ``ArtifactStore`` delta-overflow fallback on a numpy-backed
  database.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.dataset.schema import Column
from repro.dataset.table import Table
from repro.dataset.types import DataType
from repro.errors import DataError
from repro.storage import BACKEND_ENV_VAR, NumpyColumnStore, make_backend

_BACKENDS = ("python", "numpy")


def _start_methods() -> list[str]:
    configured = os.environ.get("PRISM_TEST_START_METHODS")
    if configured:
        return [m.strip() for m in configured.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    return ["fork"] if "fork" in available else ["spawn"]


START_METHODS = _start_methods()


def _cities(kind: str):
    backend = make_backend(kind)
    table = Table(
        "Cities",
        [
            Column("Name", DataType.TEXT),
            Column("State", DataType.TEXT),
            Column("Population", DataType.INT),
        ],
        backend=backend,
    )
    table.insert_many(
        [
            ("Reno", "Nevada", 264_000),
            ("Fresno", "California", 542_000),
            ("Oakland", "California", 440_000),
            ("Elko", "Nevada", None),
            (None, "Nevada", 100),
        ]
    )
    return backend, table


class TestDictionaryStability:
    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_codes_never_change_once_assigned(self, kind):
        __, table = _cities(kind)
        before_codes, before_dictionary = table.text_column_codes("State")
        table.insert_many(
            [
                ("Sparks", "Nevada", 108_000),      # existing entry
                ("Eugene", "Oregon", 178_000),      # brand-new entry
                ("Salem", None, 175_000),           # NULL text cell
            ]
        )
        codes, dictionary = table.text_column_codes("State")
        # Prefix unchanged, dictionary extended strictly at the tail.
        assert codes[: len(before_codes)] == before_codes
        assert dictionary[: len(before_dictionary)] == before_dictionary
        assert dictionary == ["Nevada", "California", "Oregon"]
        assert codes[5:] == [0, 2, codes[7]] and codes[7] < 0

    def test_backends_assign_identical_codes(self):
        tables = {kind: _cities(kind)[1] for kind in _BACKENDS}
        for column in ("Name", "State"):
            assert (
                tables["numpy"].text_column_codes(column)
                == tables["python"].text_column_codes(column)
            )


class TestNullSemantics:
    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_predicates_are_never_shown_null(self, kind):
        __, table = _cities(kind)
        # These predicates raise on None — a NULL reaching them fails.
        assert table.select_rows("Name", lambda v: v.startswith("E")) == [3]
        assert table.select_rows("Population", lambda v: v > 0) == [0, 1, 2, 4]

    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_join_index_never_contains_null(self, kind):
        __, table = _cities(kind)
        for column in ("Name", "Population"):
            index = table.join_index(column)
            assert None not in index
            total = sum(len(bucket) for bucket in index.values())
            assert total == table.num_rows - table.null_count(column)


class TestOverflowPromotion:
    def test_int64_overflow_promotes_to_object_column(self):
        store = make_backend("numpy")
        store.register_table("T", [Column("n", DataType.INT)])
        store.append_row("T", (1,))
        mark = store.table_mark("T")
        huge, negative = 2**63, -(2**64)
        store.append_row("T", (huge,))
        store.append_row("T", (negative,))
        store.append_row("T", (None,))
        assert store.column_values("T", 0) == [1, huge, negative, None]
        assert store.cell("T", 1, 0) == huge
        assert store.select_rows("T", 0, lambda v: v > 10) == [1]
        assert store.distinct_values("T", 0) == {1, huge, negative}
        assert store.value_counts("T", 0) == {1: 1, huge: 1, negative: 1}
        # The delta path is agnostic to the physical promotion.
        delta = store.delta_since("T", mark)
        assert delta is not None
        assert delta.columns[0].values == (huge, negative, None)

    def test_promoted_column_survives_pickle(self):
        store = make_backend("numpy")
        store.register_table("T", [Column("n", DataType.INT)])
        store.append_row("T", (2**70,))
        copy = pickle.loads(pickle.dumps(store))
        assert copy.column_values("T", 0) == [2**70]
        copy.append_row("T", (7,))
        assert copy.column_values("T", 0) == [2**70, 7]


class TestNaNColumns:
    def _scores(self, kind: str):
        backend = make_backend(kind)
        backend.register_table("S", [Column("x", DataType.DECIMAL)])
        for value in (1.0, float("nan"), None, 2.5):
            backend.append_row("S", (value,))
        return backend

    def test_scans_agree_across_backends(self):
        stores = {kind: self._scores(kind) for kind in _BACKENDS}
        # NaN != NaN rules row 1 out; NULL rules row 2 out.
        for kind, store in stores.items():
            assert store.select_rows("S", 0, lambda v: v == v) == [0, 3], kind
            # An always-true predicate still sees the NaN cell (it is not
            # NULL) — on both backends.
            assert store.select_rows("S", 0, lambda v: True) == [0, 1, 3], kind

    def test_nan_column_is_kernel_unsafe(self):
        store = self._scores("numpy")
        assert store.column_kernel("S", 0).nan_unsafe
        clean = make_backend("numpy")
        clean.register_table("S", [Column("x", DataType.DECIMAL)])
        clean.append_row("S", (1.5,))
        clean.append_row("S", (None,))
        assert not clean.column_kernel("S", 0).nan_unsafe

    def test_executor_declines_kernels_on_nan_join_keys(self, monkeypatch):
        import repro.query.executor as executor_module
        from repro.dataset import Database
        from repro.dataset.schema import ColumnRef
        from repro.query.executor import Executor
        from repro.query.pj_query import ProjectJoinQuery

        monkeypatch.setattr(executor_module, "KERNEL_MIN_ROWS", 0)
        results = {}
        for kind in _BACKENDS:
            database = Database(f"nan-{kind}", backend=make_backend(kind))
            left = database.create_table(
                "L", [Column("k", DataType.DECIMAL), Column("v", DataType.INT)]
            )
            right = database.create_table(
                "R", [Column("k", DataType.DECIMAL), Column("w", DataType.INT)]
            )
            left.insert_many(
                [(1.0, 10), (float("nan"), 11), (2.0, 12), (None, 13)]
            )
            right.insert_many([(2.0, 20), (float("nan"), 21), (3.0, 22)])
            database.link("L.k", "R.k")
            query = ProjectJoinQuery(
                (ColumnRef("L", "v"), ColumnRef("R", "w")),
                tuple(database.foreign_keys),
            )
            executor = Executor(database)
            results[kind] = (
                executor.execute(query),
                executor.exists(query, cell_predicates={0: lambda v: v > 11}),
                executor.stats,
                executor,
            )
        # NaN keys force the generic path: no edge kernels were built.
        assert not results["numpy"][3]._edge_kernels
        assert results["numpy"][0] == results["python"][0] == [(12, 20)]
        assert results["numpy"][1] is results["python"][1] is True
        assert results["numpy"][2] == results["python"][2]


class TestKernelSnapshots:
    def test_fresh_kernel_identity_after_append(self):
        store, table = _cities("numpy")
        first = store.column_kernel("Cities", 1)
        assert store.column_kernel("Cities", 1) is first  # cached
        table.insert(("Sparks", "Nevada", 108_000))
        second = store.column_kernel("Cities", 1)
        assert second is not first
        # The old snapshot still reads consistently at its own length.
        assert len(first.keys) == 5 and len(second.keys) == 6

    def test_kernel_views_decode_to_column_values(self):
        store, table = _cities("numpy")
        for position, column in enumerate(("Name", "State", "Population")):
            kernel = store.column_kernel("Cities", position)
            assert kernel.python_keys() == table.column_values(column)
            assert (~kernel.valid).tolist() == table.null_mask(column)
        text = store.column_kernel("Cities", 1)
        assert text.kind == "text"
        assert text.dictionary == ["Nevada", "California"]
        assert text.code_of == {"Nevada": 0, "California": 1}


# ----------------------------------------------------------------------
# Pickle round-trips across real process boundaries (fork/spawn matrix)
# ----------------------------------------------------------------------
def _exercise_in_child(store, mark, queue):
    """Append in the child and report what the shipped store looks like."""
    try:
        store.append_row("Cities", ("Sparks", "Nevada", 108_000))
        delta = store.delta_since("Cities", mark)
        queue.put({
            "rows": store.rows("Cities"),
            "dictionary": store.text_dictionary("Cities", 1),
            "index_nevada": store.join_index("Cities", 1)["Nevada"],
            "delta_rows": None if delta is None else delta.num_rows,
            "delta_values": None if delta is None else delta.columns[0].values,
        })
    except Exception as exc:  # pragma: no cover - failure path
        queue.put({"error": repr(exc)})


class TestPickleAcrossProcesses:
    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_round_trip_preserves_data_and_delta_lineage(self, method, kind):
        context = multiprocessing.get_context(method)
        store, table = _cities(kind)
        # Warm every derived cache: none of them may leak into the child
        # half-built (or at all — pickling trims to logical state).
        table.join_index("State")
        table.select_rows("Population", lambda v: v > 0)
        parent_rows = table.rows
        if isinstance(store, NumpyColumnStore):
            store.column_kernel("Cities", 1)
        mark = store.table_mark("Cities")

        queue = context.Queue()
        child = context.Process(
            target=_exercise_in_child, args=(store, mark, queue)
        )
        child.start()
        try:
            report = queue.get(timeout=60)
        finally:
            child.join(timeout=60)
        assert "error" not in report, report
        assert report["rows"] == parent_rows + [("Sparks", "Nevada", 108_000)]
        assert report["dictionary"] == ["Nevada", "California"]
        assert report["index_nevada"] == [0, 3, 4, 5]
        # The parent's mark stayed a valid delta base across the hop.
        assert report["delta_rows"] == 1
        assert report["delta_values"] == ("Sparks",)
        # The parent's copy never saw the child's append.
        assert table.num_rows == 5


# ----------------------------------------------------------------------
# Regression: stale handles and bulk-load diagnostics match exactly
# ----------------------------------------------------------------------
class TestBackendRegressions:
    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_stale_handle_stays_isolated_after_drop_recreate(self, kind):
        from repro.dataset import Database

        database = Database(f"stale-{kind}", backend=make_backend(kind))
        stale = database.create_table(
            "P", [Column("Code", DataType.TEXT), Column("N", DataType.INT)]
        )
        stale.insert_many([("a", 1), ("b", 2)])
        database.drop_table("P")
        fresh = database.create_table("P", [Column("Number", DataType.INT)])
        fresh.insert((42,))
        # The stale handle keeps its data; writes to it never leak.
        assert stale.rows == [("a", 1), ("b", 2)]
        stale.insert(("c", 3))
        assert stale.rows == [("a", 1), ("b", 2), ("c", 3)]
        assert fresh.rows == [(42,)]
        assert database.table("P") is fresh

    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_insert_many_failure_index_and_partial_load(self, kind):
        table = Table(
            "T",
            [Column("Name", DataType.TEXT), Column("N", DataType.INT)],
            backend=make_backend(kind),
        )
        with pytest.raises(DataError, match=r"row 2:"):
            table.insert_many(
                [("ok", 1), ("fine", 2), ("bad", "not a number"), ("never", 4)]
            )
        # Rows before the failure were inserted; nothing after it was.
        assert table.rows == [("ok", 1), ("fine", 2)]


class TestArtifactDeltaOverflow:
    def test_overflow_falls_back_to_rebuild_on_numpy_backend(
        self, monkeypatch
    ):
        from repro.api import ArtifactStore
        from repro.service.artifacts import ArtifactKey
        from tests.conftest import build_company_database

        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        database = build_company_database()
        assert isinstance(
            database.table("Employee")._backend, NumpyColumnStore
        )
        store = ArtifactStore(max_delta_fraction=0.05)
        store.get(database)
        for i in range(5):  # 5 rows > 5% of the ~19-row company database
            database.table("Project").insert((f"P5{i}", f"Bulk {i}", 1.0))
        bundle = store.refresh(database)
        assert store.stats.refreshes == 0
        assert store.stats.rebuild_fallbacks == 1
        assert store.stats.fallback_reasons["delta_overflow"] == 1
        assert bundle.key == ArtifactKey.for_database(database)
