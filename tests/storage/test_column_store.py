"""Unit tests for the columnar storage backends.

Every test runs against both the pure-Python :class:`ColumnStore` and the
NumPy-backed store — the whole point of the array backend is that no
observable behavior here may differ.
"""

from __future__ import annotations

import pytest

from repro.dataset.schema import Column
from repro.dataset.table import Table
from repro.dataset.types import DataType
from repro.errors import SchemaError
from repro.storage import make_backend

_BACKENDS = ("python", "numpy")


@pytest.fixture(params=_BACKENDS)
def store_and_table(request):
    backend = make_backend(request.param)
    table = Table(
        "Cities",
        [
            Column("Name", DataType.TEXT),
            Column("State", DataType.TEXT),
            Column("Population", DataType.INT),
        ],
        backend=backend,
    )
    table.insert_many(
        [
            ("Reno", "Nevada", 264_000),
            ("Fresno", "California", 542_000),
            ("Oakland", "California", 440_000),
            ("Elko", "Nevada", None),
            (None, "Nevada", 100),
        ]
    )
    return backend, table


class TestDictionaryEncoding:
    def test_text_columns_are_dictionary_encoded(self, store_and_table):
        __, table = store_and_table
        codes, dictionary = table.text_column_codes("State")
        assert dictionary == ["Nevada", "California"]  # first-seen order
        assert codes == [0, 1, 1, 0, 0]

    def test_null_text_cells_carry_negative_code(self, store_and_table):
        __, table = store_and_table
        codes, __ = table.text_column_codes("Name")
        assert codes[4] < 0

    def test_non_text_columns_are_not_encoded(self, store_and_table):
        __, table = store_and_table
        assert table.text_column_codes("Population") is None
        assert table.text_dictionary("Population") is None

    def test_decoding_round_trips(self, store_and_table):
        __, table = store_and_table
        assert table.column_values("State") == [
            "Nevada", "California", "California", "Nevada", "Nevada",
        ]
        assert table.rows[3] == ("Elko", "Nevada", None)
        assert table.row(4) == (None, "Nevada", 100)


class TestNullMasks:
    def test_null_mask_and_count(self, store_and_table):
        __, table = store_and_table
        assert table.null_mask("Population") == [False, False, False, True, False]
        assert table.null_count("Population") == 1
        assert table.null_count("State") == 0

    def test_text_null_mask(self, store_and_table):
        __, table = store_and_table
        assert table.null_mask("Name") == [False, False, False, False, True]


class TestColumnStatsAccess:
    def test_distinct_count_uses_dictionary(self, store_and_table):
        __, table = store_and_table
        assert table.distinct_count("State") == 2
        assert table.distinct_values("State") == {"Nevada", "California"}

    def test_value_counts(self, store_and_table):
        __, table = store_and_table
        assert table.value_counts("State") == {"Nevada": 3, "California": 2}
        assert table.value_counts("Population") == {
            264_000: 1, 542_000: 1, 440_000: 1, 100: 1,
        }

    def test_select_rows_vectorizes_over_dictionary(self, store_and_table):
        __, table = store_and_table
        assert table.select_rows("State", lambda v: v == "Nevada") == [0, 3, 4]
        assert table.select_rows("Population", lambda v: v > 400_000) == [1, 2]

    def test_select_rows_never_matches_nulls(self, store_and_table):
        __, table = store_and_table
        assert table.select_rows("Population", lambda v: True) == [0, 1, 2, 4]


class TestJoinIndexCache:
    def test_join_index_maps_values_to_row_indexes(self, store_and_table):
        __, table = store_and_table
        index = table.join_index("State")
        assert index["Nevada"] == [0, 3, 4]
        assert index["California"] == [1, 2]

    def test_join_index_excludes_nulls(self, store_and_table):
        __, table = store_and_table
        index = table.join_index("Population")
        assert None not in index
        assert sum(len(rows) for rows in index.values()) == 4

    def test_join_index_is_cached(self, store_and_table):
        __, table = store_and_table
        assert not table.has_cached_join_index("State")
        first = table.join_index("State")
        assert table.has_cached_join_index("State")
        assert table.join_index("State") is first

    def test_insert_invalidates_join_index_and_rows_cache(self, store_and_table):
        __, table = store_and_table
        table.join_index("State")
        before = table.storage_version
        table.insert(("Sparks", "Nevada", 108_000))
        assert not table.has_cached_join_index("State")
        assert table.storage_version > before
        assert table.join_index("State")["Nevada"] == [0, 3, 4, 5]
        assert table.rows[5] == ("Sparks", "Nevada", 108_000)


class TestBackendLifecycle:
    def test_duplicate_registration_rejected(self, store_and_table):
        backend, __ = store_and_table
        with pytest.raises(SchemaError):
            Table("Cities", [Column("X", DataType.INT)], backend=backend)

    @pytest.mark.parametrize("kind", _BACKENDS)
    def test_unknown_table_rejected(self, kind):
        backend = make_backend(kind)
        with pytest.raises(SchemaError):
            backend.num_rows("Ghost")

    def test_drop_frees_the_name(self, store_and_table):
        backend, __ = store_and_table
        backend.drop_table("Cities")
        assert not backend.has_table("Cities")
        Table("Cities", [Column("X", DataType.INT)], backend=backend)
