"""Concurrency stress tests for the columnar backend's derived caches.

Join-index and row-cache construction is lazy, so concurrent readers race
to build them.  The backend publishes caches copy-on-write under a
per-table lock: every reader must observe either a complete cache or
build its own — never a half-built one — and version tokens must always
be at least as new as the data a reader observed alongside them.
"""

from __future__ import annotations

import threading

from repro.dataset.schema import Column
from repro.dataset.table import Table
from repro.dataset.types import DataType
from repro.storage import StorageBackend, make_backend

import pytest

# Both stores publish caches copy-on-write and must pass identically.
_BACKENDS = ("python", "numpy")


@pytest.fixture(params=_BACKENDS)
def backend(request):
    return make_backend(request.param)


def _make_table(backend: StorageBackend, rows: int = 500) -> Table:
    table = Table(
        "Events",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Kind", DataType.TEXT),
            Column("Weight", DataType.DECIMAL),
        ],
        backend=backend,
    )
    for index in range(rows):
        table.insert((index, f"kind-{index % 7}", float(index)))
    return table


def _run_threads(workers, timeout: float = 60.0) -> list[str]:
    errors: list[str] = []
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    assert not any(thread.is_alive() for thread in threads)
    return errors


class TestConcurrentReaders:
    def test_racing_join_index_builds_are_consistent(self, backend):
        table = _make_table(backend)
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        results: list[dict] = []
        errors: list[str] = []

        def reader():
            try:
                barrier.wait(timeout=30)
                index = table.join_index("Kind")
                results.append(index)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        _run_threads([reader] * num_threads)
        assert not errors
        assert len(results) == num_threads
        # Every reader got a complete index over all 500 rows.
        for index in results:
            assert sorted(index) == [f"kind-{i}" for i in range(7)]
            assert sum(len(rows) for rows in index.values()) == 500
        # The winning build was published once and shared thereafter.
        assert backend.has_cached_join_index("Events", 1)
        assert table.join_index("Kind") is results[0]

    def test_racing_rows_cache_builds_are_consistent(self, backend):
        table = _make_table(backend, rows=200)
        num_threads = 8
        barrier = threading.Barrier(num_threads)
        errors: list[str] = []

        def reader():
            try:
                barrier.wait(timeout=30)
                rows = table.rows
                if len(rows) != 200 or rows[42] != (42, "kind-0", 42.0):
                    errors.append(f"inconsistent rows snapshot: {len(rows)}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        _run_threads([reader] * num_threads)
        assert not errors

    def test_readers_race_one_writer_without_corruption(self, backend):
        table = _make_table(backend, rows=100)
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            try:
                for index in range(100, 400):
                    table.insert((index, f"kind-{index % 7}", float(index)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    version = table.storage_version
                    index = table.join_index("Id")
                    rows = table.rows
                    # A cache snapshot may trail the writer but must be
                    # internally complete: every bucket points at a valid
                    # row holding exactly that key.
                    total = sum(len(bucket) for bucket in index.values())
                    if total < 100 or len(rows) < 100:
                        errors.append(
                            f"lost rows: index={total}, rows={len(rows)}"
                        )
                        return
                    for key in (0, 50, 99):
                        bucket = index.get(key)
                        if not bucket:
                            errors.append(f"missing join key {key}")
                            return
                    # Version tokens never run backwards.
                    if table.storage_version < version:
                        errors.append("version token went backwards")
                        return
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        workers = [writer] + [reader] * 6
        _run_threads(workers)
        assert not errors
        # After the writer finishes, a fresh index covers everything.
        final = table.join_index("Id")
        assert sum(len(bucket) for bucket in final.values()) == 400

    def test_concurrent_version_token_reads_with_writes(self, backend):
        table = _make_table(backend, rows=10)
        database_versions: list[int] = []
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            try:
                for index in range(10, 210):
                    table.insert((index, f"kind-{index % 7}", float(index)))
            finally:
                stop.set()

        def version_reader():
            try:
                last = -1
                while not stop.is_set():
                    current = backend.version("Events")
                    if current < last:
                        errors.append(f"version regressed: {last} -> {current}")
                        return
                    last = current
                database_versions.append(last)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(repr(exc))

        _run_threads([writer] + [version_reader] * 4)
        assert not errors
        assert backend.version("Events") == 210
