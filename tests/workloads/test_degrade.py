"""Unit tests for constraint degradation (resolution levels)."""

from __future__ import annotations

import pytest

from repro.constraints.resolution import Resolution
from repro.constraints.values import ExactValue, OneOf, Range
from repro.dataset.catalog import MetadataCatalog
from repro.errors import WorkloadError
from repro.workloads.degrade import (
    DEFAULT_SWEEP_LEVELS,
    ResolutionLevel,
    spec_for_level,
)
from repro.workloads.generator import WorkloadCase, WorkloadGenerator


@pytest.fixture(scope="module")
def case(company_db_session):
    generator = WorkloadGenerator(company_db_session, seed=9)
    return generator.generate_case(num_columns=3, num_tables=2)


@pytest.fixture(scope="module")
def catalog(company_db_session):
    return MetadataCatalog.build(company_db_session)


class TestLevels:
    def test_level_names_resolve(self):
        assert ResolutionLevel.from_name("exact") is ResolutionLevel.EXACT
        assert ResolutionLevel.from_name("DISJUNCTION") is ResolutionLevel.DISJUNCTION
        with pytest.raises(WorkloadError):
            ResolutionLevel.from_name("fuzzy")

    def test_default_sweep_covers_exact_to_sparse(self):
        assert DEFAULT_SWEEP_LEVELS[0] is ResolutionLevel.EXACT
        assert ResolutionLevel.SPARSE in DEFAULT_SWEEP_LEVELS


class TestSpecDerivation:
    def test_exact_level_keeps_every_cell(self, case, company_db_session):
        spec = spec_for_level(case, ResolutionLevel.EXACT, company_db_session)
        assert len(spec.samples) == len(case.sample_rows)
        sample = spec.samples[0]
        assert sample.is_complete
        assert all(isinstance(cell, ExactValue) for cell in sample.cells)
        assert sample.satisfied_by_row(case.sample_rows[0])

    def test_partial_level_blanks_one_cell(self, case, company_db_session):
        spec = spec_for_level(case, ResolutionLevel.PARTIAL, company_db_session)
        sample = spec.samples[0]
        assert not sample.is_complete
        assert len(sample.constrained_positions()) == case.num_columns - 1

    def test_disjunction_level_contains_the_true_value(self, case, company_db_session):
        spec = spec_for_level(case, ResolutionLevel.DISJUNCTION, company_db_session)
        sample = spec.samples[0]
        assert sample.satisfied_by_row(case.sample_rows[0])
        assert any(isinstance(cell, OneOf) for cell in sample.cells)

    def test_range_level_wraps_numeric_cells(self, case, company_db_session):
        spec = spec_for_level(case, ResolutionLevel.RANGE, company_db_session)
        sample = spec.samples[0]
        assert sample.satisfied_by_row(case.sample_rows[0])

    def test_mixed_level_is_at_most_medium_resolution(self, case, company_db_session):
        spec = spec_for_level(case, ResolutionLevel.MIXED, company_db_session)
        assert spec.resolution <= Resolution.MEDIUM
        assert spec.samples[0].satisfied_by_row(case.sample_rows[0])

    def test_sparse_level_keeps_one_cell_and_adds_metadata(
        self, case, company_db_session, catalog
    ):
        spec = spec_for_level(
            case, ResolutionLevel.SPARSE, company_db_session, catalog=catalog
        )
        sample = spec.samples[0]
        assert len(sample.constrained_positions()) == 1
        # Metadata describes the ground-truth columns truthfully.
        for position, constraint in spec.metadata.items():
            ref = case.ground_truth.projections[position]
            assert constraint.matches(catalog.stats(ref))

    def test_metadata_level_constrains_every_other_column(
        self, case, company_db_session, catalog
    ):
        spec = spec_for_level(
            case, ResolutionLevel.METADATA, company_db_session, catalog=catalog
        )
        constrained = set(spec.samples[0].constrained_positions())
        assert len(constrained) == 1
        assert set(spec.metadata) == set(range(case.num_columns)) - constrained

    def test_derivation_is_deterministic(self, case, company_db_session):
        first = spec_for_level(case, ResolutionLevel.MIXED, company_db_session, seed=5)
        second = spec_for_level(case, ResolutionLevel.MIXED, company_db_session, seed=5)
        assert [s.describe() for s in first.samples] == [
            s.describe() for s in second.samples
        ]

    def test_different_seeds_can_differ(self, case, company_db_session):
        texts = {
            spec_for_level(
                case, ResolutionLevel.PARTIAL, company_db_session, seed=seed
            ).samples[0].describe()
            for seed in range(6)
        }
        assert len(texts) >= 2

    def test_case_without_samples_is_rejected(self, case, company_db_session):
        empty = WorkloadCase(case_id=99, ground_truth=case.ground_truth, sample_rows=[])
        with pytest.raises(WorkloadError):
            spec_for_level(empty, ResolutionLevel.EXACT, company_db_session)

    def test_ground_truth_satisfies_derived_specs_at_every_level(
        self, case, company_db_session, catalog
    ):
        from repro.query.executor import Executor

        executor = Executor(company_db_session)
        rows = executor.execute(case.ground_truth)
        for level in DEFAULT_SWEEP_LEVELS:
            spec = spec_for_level(
                case, level, company_db_session, catalog=catalog
            )
            for sample in spec.samples:
                assert sample.satisfied_by_result(rows), level
