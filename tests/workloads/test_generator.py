"""Unit tests for ground-truth workload case generation."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.query.executor import Executor
from repro.workloads.generator import WorkloadGenerator


class TestGenerateCase:
    def test_case_shape_matches_request(self, company_db):
        generator = WorkloadGenerator(company_db, seed=3)
        case = generator.generate_case(num_columns=3, num_tables=2, num_samples=2)
        assert case.num_columns == 3
        assert len(case.ground_truth.tables) == 2
        assert len(case.sample_rows) == 2

    def test_ground_truth_is_valid_and_non_empty(self, company_db):
        generator = WorkloadGenerator(company_db, seed=5)
        case = generator.generate_case(num_columns=2, num_tables=2)
        case.ground_truth.validate(company_db)
        rows = Executor(company_db).execute(case.ground_truth)
        assert rows

    def test_sample_rows_come_from_the_result(self, company_db):
        generator = WorkloadGenerator(company_db, seed=7)
        case = generator.generate_case(num_columns=2, num_tables=2)
        rows = set(Executor(company_db).execute(case.ground_truth))
        for sample in case.sample_rows:
            assert sample in rows
            assert all(cell is not None for cell in sample)

    def test_single_table_case(self, company_db):
        generator = WorkloadGenerator(company_db, seed=11)
        case = generator.generate_case(num_columns=2, num_tables=1)
        assert case.join_size == 0
        assert len(case.ground_truth.tables) == 1

    def test_case_ids_are_sequential(self, company_db):
        generator = WorkloadGenerator(company_db, seed=1)
        cases = generator.generate_cases(3, num_columns=2, num_tables=2)
        assert [case.case_id for case in cases] == [0, 1, 2]

    def test_generation_is_deterministic_per_seed(self, company_db):
        first = WorkloadGenerator(company_db, seed=42).generate_case(2, 2)
        second = WorkloadGenerator(company_db, seed=42).generate_case(2, 2)
        assert first.ground_truth.signature() == second.ground_truth.signature()
        assert first.sample_rows == second.sample_rows

    def test_matches_query_compares_signatures(self, company_db):
        generator = WorkloadGenerator(company_db, seed=2)
        case = generator.generate_case(num_columns=2, num_tables=2)
        assert case.matches_query(case.ground_truth)

    def test_invalid_shapes_rejected(self, company_db):
        generator = WorkloadGenerator(company_db, seed=0)
        with pytest.raises(WorkloadError):
            generator.generate_case(num_columns=0)
        with pytest.raises(WorkloadError):
            generator.generate_case(num_columns=2, num_tables=0)

    def test_impossible_request_raises_after_attempts(self, company_db):
        generator = WorkloadGenerator(company_db, seed=0)
        with pytest.raises(WorkloadError):
            # More tables than exist in the schema graph.
            generator.generate_case(num_columns=2, num_tables=40, max_attempts=5)

    def test_mondial_cases_exercise_geo_joins(self, mondial_db):
        generator = WorkloadGenerator(mondial_db, seed=4)
        cases = generator.generate_cases(3, num_columns=3, num_tables=2)
        assert all(case.join_size == 1 for case in cases)
