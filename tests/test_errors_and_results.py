"""Tests for the exception hierarchy and result containers."""

from __future__ import annotations

import pytest

from repro import errors
from repro.dataset.schema import ColumnRef
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.query.pj_query import ProjectJoinQuery


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in (
            "SchemaError", "DataError", "QueryError", "ConstraintError",
            "ConstraintParseError", "SpecError", "DiscoveryError",
            "DiscoveryTimeout", "TrainingError", "WorkloadError", "SessionError",
        ):
            error_class = getattr(errors, name)
            assert issubclass(error_class, errors.ReproError)

    def test_parse_error_is_a_constraint_error(self):
        assert issubclass(errors.ConstraintParseError, errors.ConstraintError)

    def test_timeout_is_a_discovery_error_and_carries_partial_result(self):
        assert issubclass(errors.DiscoveryTimeout, errors.DiscoveryError)
        partial = DiscoveryResult()
        exception = errors.DiscoveryTimeout("too slow", partial)
        assert exception.partial_result is partial

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.SessionError("bad transition")


class TestDiscoveryResult:
    def _result(self) -> DiscoveryResult:
        query = ProjectJoinQuery((ColumnRef("Lake", "Name"),))
        stats = DiscoveryStats(scheduler_name="bayesian", validations=7,
                               num_candidates=3, elapsed_seconds=0.5)
        return DiscoveryResult(queries=[query], stats=stats)

    def test_counts_and_best(self):
        result = self._result()
        assert result.num_queries == 1
        assert not result.is_empty
        assert result.best().projections[0] == ColumnRef("Lake", "Name")

    def test_empty_result(self):
        result = DiscoveryResult()
        assert result.is_empty
        assert result.best() is None
        assert result.sql() == []
        assert not result.timed_out

    def test_sql_and_describe(self):
        result = self._result()
        assert result.sql() == ["SELECT Lake.Name FROM Lake"]
        text = result.describe()
        assert "1 satisfying schema mapping query" in text
        assert "7 filter validations" in text

    def test_describe_marks_timeouts(self):
        result = self._result()
        result.stats.timed_out = True
        assert "TIMED OUT" in result.describe()

    def test_stats_as_dict_round_trip(self):
        stats = self._result().stats
        payload = stats.as_dict()
        assert payload["scheduler"] == "bayesian"
        assert payload["validations"] == 7
        assert payload["timed_out"] is False
