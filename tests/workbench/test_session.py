"""Unit tests for the PrismSession workflow (Configuration → Description → Result)."""

from __future__ import annotations

import pytest

from repro.errors import SessionError
from repro.workbench.session import PrismSession, SessionStage


@pytest.fixture()
def session(company_db_session):
    # Use the small company database so searches are fast and deterministic.
    return PrismSession(databases={"company": company_db_session})


def configure(session: PrismSession, num_samples: int = 1) -> PrismSession:
    return session.configure("company", num_columns=2, num_samples=num_samples)


class TestConfiguration:
    def test_initial_stage(self, session):
        assert session.stage is SessionStage.CONFIGURATION

    def test_available_databases_reflect_injected_mapping(self, session):
        assert session.available_databases() == ["company"]

    def test_default_session_offers_demo_databases(self):
        assert PrismSession().available_databases() == ["imdb", "mondial", "nba"]

    def test_configure_moves_to_description(self, session):
        configure(session)
        assert session.stage is SessionStage.DESCRIPTION

    def test_configure_rejects_unknown_database(self, session):
        with pytest.raises(SessionError):
            session.configure("oracle", num_columns=2)

    def test_configure_rejects_bad_shapes(self, session):
        with pytest.raises(SessionError):
            session.configure("company", num_columns=0)
        with pytest.raises(SessionError):
            session.configure("company", num_columns=2, num_samples=-1)


class TestDescription:
    def test_cells_require_configuration_first(self, session):
        with pytest.raises(SessionError):
            session.set_sample_cell(0, 0, "x")
        with pytest.raises(SessionError):
            session.set_metadata_constraint(0, "DataType=='text'")

    def test_cell_indices_are_validated(self, session):
        configure(session)
        with pytest.raises(SessionError):
            session.set_sample_cell(1, 0, "x")
        with pytest.raises(SessionError):
            session.set_sample_cell(0, 5, "x")
        with pytest.raises(SessionError):
            session.set_metadata_constraint(9, "DataType=='text'")

    def test_metadata_requires_enablement(self, session):
        session.configure("company", num_columns=2, use_metadata=False)
        with pytest.raises(SessionError):
            session.set_metadata_constraint(0, "DataType=='text'")

    def test_build_spec_collects_cells_and_metadata(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_metadata_constraint(1, "DataType=='text'")
        spec = session.build_spec()
        assert spec.num_columns == 2
        assert len(spec.samples) == 1
        assert spec.metadata_for(1) is not None

    def test_blank_rows_and_blank_metadata_are_dropped(self, session):
        session.configure("company", num_columns=2, num_samples=2)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_metadata_constraint(1, "   ")
        spec = session.build_spec()
        assert len(spec.samples) == 1
        assert spec.metadata == {}


class TestSearchAndResults:
    def test_search_produces_results_and_moves_stage(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        result = session.search()
        assert session.stage is SessionStage.RESULT
        assert result.num_queries >= 1
        assert session.result is result
        assert len(session.queries()) == result.num_queries

    def test_search_without_constraints_is_rejected(self, session):
        configure(session)
        with pytest.raises(Exception):
            session.search()

    def test_select_and_sql_and_explain(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        query = session.select_query(0)
        assert session.selected_query is query
        assert session.sql().startswith("SELECT")
        ascii_text = session.explain(fmt="ascii")
        assert "constraints:" in ascii_text
        dot_text = session.explain(fmt="dot")
        assert dot_text.startswith("graph")
        payload = session.explain(fmt="dict")
        assert payload["sql"] == session.sql()

    def test_explain_plan_matches_the_physical_join_order(self, session):
        from repro.query.plan import Join, Scan, Filter as PlanFilter

        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        joined = next(
            i for i, q in enumerate(session.queries()) if q.join_size >= 1
        )
        session.select_query(joined)
        text = session.explain_plan()
        assert "Project[" in text and "Scan(" in text and "rows" in text
        # The rendered join order is exactly the executor's physical
        # order, predicates notwithstanding: displayed plans come from
        # the structural (cost-only) optimization.
        engine = session._engine()
        query = session.selected_query
        displayed = engine.executor.logical_plan(
            query,
            # Any predicate overlay must not perturb the join order.
            [],
        )
        order = engine.executor.planner.join_order(query)
        spine = displayed.child
        edges = []
        while isinstance(spine, Join):
            edges.append(spine.edge)
            spine = spine.left
        edges.reverse()
        assert tuple(edges) == order.edges
        while isinstance(spine, PlanFilter):
            spine = spine.child
        assert isinstance(spine, Scan) and spine.table == order.start_table

    def test_explain_plan_overlays_one_sample_row_only(self, session):
        configure(session, num_samples=2)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(1, 0, "Marketing")
        session.search()
        session.select_query(0)
        first = session.explain_plan()
        assert "Engineering" in first and "Marketing" not in first
        second = session.explain_plan(sample=1)
        assert "Marketing" in second and "Engineering" not in second
        with pytest.raises(SessionError):
            session.explain_plan(sample=5)

    def test_explain_unknown_format_rejected(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        session.select_query(0)
        with pytest.raises(SessionError):
            session.explain(fmt="png")

    def test_result_access_before_search_is_rejected(self, session):
        configure(session)
        with pytest.raises(SessionError):
            session.queries()
        with pytest.raises(SessionError):
            session.select_query(0)

    def test_select_out_of_range_rejected(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        with pytest.raises(SessionError):
            session.select_query(10_000)

    def test_explain_without_selection_requires_index(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        with pytest.raises(SessionError):
            session.explain()
        assert "SELECT" in session.explain(index=0, fmt="ascii")

    def test_reset_returns_to_configuration(self, session):
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        session.reset()
        assert session.stage is SessionStage.CONFIGURATION
        assert session.result is None


class TestStructuredTimeouts:
    def test_engine_timeout_becomes_partial_result(
        self, company_db_session, monkeypatch
    ):
        from repro.discovery.engine import Prism
        from repro.discovery.result import DiscoveryResult, DiscoveryStats
        from repro.errors import DiscoveryTimeout
        from repro.query.pj_query import ProjectJoinQuery
        from repro.dataset.schema import ColumnRef

        session = PrismSession(databases={"company": company_db_session})
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")

        partial_stats = DiscoveryStats(scheduler_name="bayesian")
        partial_stats.validations = 3
        partial = DiscoveryResult(
            queries=[
                ProjectJoinQuery(
                    (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
                    (
                        # any valid single edge won't form the full tree, so
                        # keep a 1-table query for simplicity
                    ),
                )
            ],
            stats=partial_stats,
        )

        def raising_discover(self, spec, **kwargs):
            raise DiscoveryTimeout("deadline exceeded", partial)

        monkeypatch.setattr(Prism, "discover", raising_discover)
        result = session.search()
        # The timeout surfaced as a structured result with the partial
        # queries and their stats, not as an exception.
        assert session.stage is SessionStage.RESULT
        assert result.timed_out
        assert result.stats.validations == 3
        assert result.num_queries == 1
        assert session.queries() == result.queries

    def test_timeout_without_partial_result_yields_empty_result(
        self, company_db_session, monkeypatch
    ):
        from repro.discovery.engine import Prism
        from repro.errors import DiscoveryTimeout

        session = PrismSession(databases={"company": company_db_session})
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        monkeypatch.setattr(
            Prism,
            "discover",
            lambda self, spec, **kwargs: (_ for _ in ()).throw(
                DiscoveryTimeout("deadline exceeded")
            ),
        )
        result = session.search()
        assert result.timed_out
        assert result.is_empty

    def test_tiny_time_limit_times_out_structurally(self, company_db_session):
        session = PrismSession(databases={"company": company_db_session})
        session.configure("company", num_columns=2, num_samples=1,
                          time_limit=1e-9)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        result = session.search()
        assert result.timed_out
        assert session.stage is SessionStage.RESULT


class TestArtifactStoreBackedSessions:
    def test_sessions_share_one_preprocessing_pass(self, company_db_session):
        from repro.service import ArtifactStore

        store = ArtifactStore()
        first = PrismSession(
            databases={"company": company_db_session}, artifact_store=store
        )
        second = PrismSession(
            databases={"company": company_db_session}, artifact_store=store
        )
        for session in (first, second):
            configure(session)
            session.set_sample_cell(0, 0, "Engineering")
            session.set_sample_cell(0, 1, "Query Optimizer")
        first_result = first.search()
        second_result = second.search()
        assert store.stats.builds == 1
        assert store.stats.hits >= 1
        assert first_result.sql() == second_result.sql()
        # Both sessions' engines view the very same artifact objects.
        assert first._engine().index is second._engine().index

    def test_store_backed_session_rebuilds_on_data_change(self, company_db):
        from repro.service import ArtifactStore

        store = ArtifactStore()
        session = PrismSession(
            databases={"company": company_db}, artifact_store=store
        )
        configure(session)
        session.set_sample_cell(0, 0, "Engineering")
        session.set_sample_cell(0, 1, "Query Optimizer")
        session.search()
        old_engine = session._engine()
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Research", 99_000.0, 31)
        )
        session.search()
        assert store.stats.builds == 2
        assert session._engine() is not old_engine
