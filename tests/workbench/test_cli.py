"""Unit tests for the prism CLI."""

from __future__ import annotations

import pytest

from repro.workbench.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_arguments(self):
        args = build_parser().parse_args(
            [
                "search",
                "--database", "mondial",
                "--columns", "3",
                "--sample", "California || Nevada;Lake Tahoe;",
                "--metadata", "2:DataType=='decimal' AND MinValue>=0",
            ]
        )
        assert args.database == "mondial"
        assert args.columns == 3
        assert len(args.sample) == 1
        assert args.scheduler == "bayesian"


class TestCommands:
    def test_databases_command_lists_bundled_sources(self, capsys):
        assert main(["databases"]) == 0
        output = capsys.readouterr().out
        assert "mondial" in output and "imdb" in output and "nba" in output

    def test_schema_command_describes_tables(self, capsys):
        assert main(["schema", "nba"]) == 0
        output = capsys.readouterr().out
        assert "Team" in output and "Player" in output
        assert "foreign keys:" in output

    def test_search_command_end_to_end(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--max-queries", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "satisfying queries" in output
        assert "SELECT" in output

    def test_search_command_with_explain(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--explain", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "relations:" in output

    def test_explain_command_prints_the_graph(self, capsys):
        exit_code = main(
            [
                "explain",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "query [1]:" in output
        assert "relations:" in output

    def test_explain_command_plan_prints_the_optimized_plan(self, capsys):
        exit_code = main(
            [
                "explain",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--plan",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Project[" in output
        assert "Scan(" in output
        # Cardinality annotations come from the planner's estimates.
        assert "rows" in output

    def test_explain_command_without_results_fails_cleanly(self, capsys):
        exit_code = main(
            [
                "explain",
                "--database", "nba",
                "--columns", "2",
                "--sample", "No Such Team;Nobody At All",
                "--plan",
            ]
        )
        assert exit_code == 1
        assert "no satisfying queries" in capsys.readouterr().err

    def test_search_rejects_too_many_cells(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "1",
                "--sample", "a;b;c",
            ]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_search_rejects_malformed_metadata(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "1",
                "--sample", "Lakers",
                "--metadata", "DataType=='text'",
            ]
        )
        assert exit_code == 2
        assert "COLUMN:TEXT" in capsys.readouterr().err


class TestTimeoutSurface:
    def test_search_times_out_structurally_with_exit_code(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--time-limit", "0.000001",
                "--fail-on-timeout",
            ]
        )
        assert exit_code == 3
        output = capsys.readouterr().out
        # Structured partial output, not a traceback: the stats line and
        # the timeout warning are both printed.
        assert "satisfying queries" in output
        assert "results are partial" in output

    def test_search_timeout_without_flag_still_exits_zero(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--time-limit", "0.000001",
            ]
        )
        assert exit_code == 0
        assert "results are partial" in capsys.readouterr().out


class TestServeBatch:
    def test_serve_batch_demo_workload(self, capsys):
        exit_code = main(["serve-batch", "--workers", "2", "--rounds", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "served 3 requests with 2 workers" in output
        assert "3 builds" in output
        assert "[demo-mondial-1] mondial: ok" in output
        assert "latency:" in output

    def test_serve_batch_refresh_reports_counters(self, capsys):
        exit_code = main(
            ["serve-batch", "--workers", "2", "--rounds", "1", "--refresh"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        # A static workload never triggers a delta, but the incremental
        # maintenance counters must be reported (and stay at zero).
        assert "incremental refresh: 0 refreshes" in output
        assert "0 rebuild fallbacks" in output

    def test_serve_batch_requests_file(self, capsys, tmp_path):
        import json

        requests_path = tmp_path / "requests.json"
        requests_path.write_text(
            json.dumps(
                [
                    {
                        "database": "nba",
                        "columns": 2,
                        "samples": [["Lakers", "LeBron James"]],
                        "request_id": "file-1",
                    },
                    {
                        "database": "nba",
                        "columns": 1,
                        "samples": [["Celtics"]],
                        "request_id": "file-2",
                    },
                ]
            ),
            encoding="utf-8",
        )
        exit_code = main(
            ["serve-batch", "--workers", "2", "--requests", str(requests_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "[file-1] nba: ok" in output
        assert "[file-2] nba: ok" in output
        # One preprocessing pass serves both requests.
        assert "1 builds" in output

    def test_serve_batch_persists_artifacts(self, capsys, tmp_path):
        import json

        requests_path = tmp_path / "requests.json"
        requests_path.write_text(
            json.dumps(
                [
                    {
                        "database": "nba",
                        "columns": 1,
                        "samples": [["Lakers"]],
                        "request_id": "warm-1",
                    }
                ]
            ),
            encoding="utf-8",
        )
        args = [
            "serve-batch",
            "--workers", "1",
            "--requests", str(requests_path),
            "--artifact-dir", str(tmp_path / "artifacts"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "1 builds" in first
        # Second run warm-starts from the persisted bundle.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 builds" in second
        assert "1 disk loads" in second

    def test_serve_batch_rejects_bad_requests_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["serve-batch", "--requests", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_batch_rejects_non_list_payload(self, capsys, tmp_path):
        not_list = tmp_path / "obj.json"
        not_list.write_text("{}", encoding="utf-8")
        assert main(["serve-batch", "--requests", str(not_list)]) == 2
        assert "JSON list" in capsys.readouterr().err

    def test_serve_batch_rejects_bad_pool_configuration(self, capsys):
        assert main(["serve-batch", "--rounds", "0"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["serve-batch", "--workers", "0"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["serve-batch", "--queue-size", "0"]) == 2
        assert "error" in capsys.readouterr().err
