"""Unit tests for the prism CLI."""

from __future__ import annotations

import pytest

from repro.workbench.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_arguments(self):
        args = build_parser().parse_args(
            [
                "search",
                "--database", "mondial",
                "--columns", "3",
                "--sample", "California || Nevada;Lake Tahoe;",
                "--metadata", "2:DataType=='decimal' AND MinValue>=0",
            ]
        )
        assert args.database == "mondial"
        assert args.columns == 3
        assert len(args.sample) == 1
        assert args.scheduler == "bayesian"


class TestCommands:
    def test_databases_command_lists_bundled_sources(self, capsys):
        assert main(["databases"]) == 0
        output = capsys.readouterr().out
        assert "mondial" in output and "imdb" in output and "nba" in output

    def test_schema_command_describes_tables(self, capsys):
        assert main(["schema", "nba"]) == 0
        output = capsys.readouterr().out
        assert "Team" in output and "Player" in output
        assert "foreign keys:" in output

    def test_search_command_end_to_end(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--max-queries", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "satisfying queries" in output
        assert "SELECT" in output

    def test_search_command_with_explain(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "2",
                "--sample", "Lakers;LeBron James",
                "--explain", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "relations:" in output

    def test_search_rejects_too_many_cells(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "1",
                "--sample", "a;b;c",
            ]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_search_rejects_malformed_metadata(self, capsys):
        exit_code = main(
            [
                "search",
                "--database", "nba",
                "--columns", "1",
                "--sample", "Lakers",
                "--metadata", "DataType=='text'",
            ]
        )
        assert exit_code == 2
        assert "COLUMN:TEXT" in capsys.readouterr().err
