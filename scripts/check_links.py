#!/usr/bin/env python3
"""Markdown dead-link checker for README.md and docs/*.md.

Verifies, without any network access, that every Markdown link target
resolves:

* relative file links point at files that exist (resolved against the
  linking file's directory);
* fragment links (``#section``, ``file.md#section``) point at a heading
  whose GitHub-style anchor slug matches;
* absolute URLs (http/https/mailto) are skipped — checking them needs a
  network and they are deliberately rare in this repository.

Run directly (``python scripts/check_links.py [files...]``; defaults to
``README.md`` and ``docs/*.md`` relative to the repository root) or
import :func:`check_file` / :func:`main` — the tier-1 test
``tests/test_docs.py`` and the CI ``docs`` job both do.

Exit status: 0 when every link resolves, 1 otherwise (one diagnostic
line per broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — target captured up to the closing parenthesis.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def anchor_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation
    stripped, spaces to hyphens (backtick spans contribute their text)."""
    text = heading.strip().casefold().replace("`", "")
    # Drop markdown emphasis markers and any remaining punctuation other
    # than word characters, spaces and hyphens.
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """All anchor slugs defined by a Markdown file's headings."""
    return {
        anchor_slug(match)
        for match in _HEADING.findall(path.read_text(encoding="utf-8"))
    }


def check_file(path: Path) -> list[str]:
    """All broken links of one file, as human-readable diagnostics."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for target in _LINK.findall(text):
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            linked = (path.parent / file_part).resolve()
            if not linked.exists():
                errors.append(f"{path}: broken link -> {target}")
                continue
        else:
            linked = path
        if fragment:
            if linked.suffix != ".md" or not linked.is_file():
                errors.append(f"{path}: fragment on non-markdown -> {target}")
            elif fragment not in heading_anchors(linked):
                errors.append(f"{path}: missing anchor -> {target}")
    return errors


def default_files(root: Path) -> list[Path]:
    """README.md plus every docs/*.md under ``root``."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = default_files(Path(__file__).resolve().parent.parent)
    if not files:
        print("no markdown files to check", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
