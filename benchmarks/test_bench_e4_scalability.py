"""E4 — interactivity and scalability (paper §2.2: 60-second interactive limit).

The search space is "exponential in the complexity of the desired schema
mapping and the source database schema"; Prism bounds each discovery round
at 60 seconds.  This benchmark sweeps the target-schema width and the
ground-truth join size and checks every configuration stays interactive.
The table is written to ``benchmarks/reports/e4_scalability.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.evaluation.experiments import run_scalability_sweep
from repro.evaluation.reporting import format_table

_CONFIGS = [(2, 1), (2, 2), (3, 2), (3, 3), (4, 2)]
_ROWS: list[dict] = []


@pytest.mark.parametrize(
    "width,tables", _CONFIGS, ids=[f"w{w}t{t}" for w, t in _CONFIGS]
)
def test_e4_discovery_scales_with_width_and_joins(
    benchmark, mondial_db, width, tables
):
    def run() -> list[dict]:
        return run_scalability_sweep(
            mondial_db,
            widths=(width,),
            table_counts=(tables,),
            cases_per_config=1,
            scheduler="bayesian",
            limits=BENCH_LIMITS,
            seed=29 + width * 10 + tables,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.extend(rows)
    for row in rows:
        benchmark.extra_info["candidates"] = row["candidates"]
        benchmark.extra_info["filters"] = row["filters"]
        # The paper's interactivity requirement: each round finishes within
        # the 60-second limit on laptop-scale data.
        assert not row["timed_out"]
        assert row["elapsed_seconds"] < 60.0


def test_e4_report(benchmark):
    if not _ROWS:
        pytest.skip("scalability benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        _ROWS,
        columns=["columns", "tables", "candidates", "filters", "validations",
                 "num_queries", "elapsed_seconds"],
        title="E4: discovery cost vs target width and ground-truth join size",
    )
    write_report("e4_scalability", table)
