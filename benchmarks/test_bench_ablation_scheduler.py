"""Ablation — failure-probability estimator and filter granularity.

DESIGN.md calls out two design choices worth ablating:

* the failure-probability estimator behind filter scheduling (naive
  full-candidate validation vs path-length heuristic vs Bayesian models vs
  the optimal oracle), and
* whether metadata constraints actually shrink the candidate space.

Reports: ``benchmarks/reports/ablation_scheduler.txt`` and
``benchmarks/reports/ablation_metadata.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.evaluation.experiments import (
    run_metadata_ablation,
    run_scheduler_comparison,
)
from repro.evaluation.metrics import mean
from repro.evaluation.reporting import format_table
from repro.workloads.degrade import ResolutionLevel

_SCHEDULERS = ("naive", "filter", "bayesian", "optimal")


def test_ablation_scheduler_validations(benchmark, engine, mondial_db, cases):
    def run() -> list[dict]:
        return run_scheduler_comparison(
            mondial_db,
            cases,
            level=ResolutionLevel.DISJUNCTION,
            schedulers=_SCHEDULERS,
            limits=BENCH_LIMITS,
            engine=engine,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = [
        {
            "scheduler": scheduler,
            "mean_validations": mean(
                row[f"validations_{scheduler}"] for row in rows
            ),
        }
        for scheduler in _SCHEDULERS
    ]
    table = format_table(
        summary,
        title="Ablation: mean filter validations per scheduling policy "
              "(disjunction-level constraints)",
    )
    write_report("ablation_scheduler", table)

    by_name = {row["scheduler"]: row["mean_validations"] for row in summary}
    # The oracle lower-bounds everything; the Bayesian policy must not be
    # worse than the path-length baseline on average.
    assert by_name["optimal"] <= by_name["bayesian"]
    assert by_name["optimal"] <= by_name["filter"]
    assert by_name["bayesian"] <= by_name["filter"] * 1.05
    for scheduler in _SCHEDULERS:
        benchmark.extra_info[scheduler] = by_name[scheduler]


def test_ablation_metadata_constraints(benchmark, mondial_db, cases):
    def run() -> list[dict]:
        return run_metadata_ablation(mondial_db, cases, limits=BENCH_LIMITS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["case", "variant", "candidates", "filters", "validations",
                 "num_queries", "elapsed_seconds"],
        title="Ablation: effect of metadata constraints on the candidate space "
              "(sparse samples)",
    )
    write_report("ablation_metadata", table)

    for case in cases:
        with_metadata = next(
            row for row in rows
            if row["case"] == case.case_id and row["variant"] == "with_metadata"
        )
        without_metadata = next(
            row for row in rows
            if row["case"] == case.case_id and row["variant"] == "without_metadata"
        )
        assert with_metadata["candidates"] <= without_metadata["candidates"]
