"""Incremental artifact refresh vs full rebuild across delta sizes.

Builds a Mondial-scale database, warms an :class:`ArtifactStore`, then
measures how long it takes to bring the preprocessing artifacts up to
date after appending batches of rows two ways:

* **full rebuild** — ``ArtifactStore.build()``: index + catalog + schema
  graph + Bayesian training from scratch (what every mutation used to
  cost);
* **incremental refresh** — ``ArtifactStore.refresh()``: fold the append
  delta into the cached bundle in place (``docs/incremental.md``).

The report (``benchmarks/reports/incremental_refresh.txt``) records both
latencies per delta size, and the final test asserts the PR's
acceptance target: refresh is **≥5× faster than a rebuild for deltas of
≤1% appended rows**.  Golden equivalence of the two paths is proven
separately in ``tests/service/test_artifact_refresh.py``.
"""

from __future__ import annotations

import itertools

import pytest

from benchmarks.conftest import write_report
from repro.datasets import load_mondial
from repro.service import ArtifactStore

DELTA_FRACTIONS = [0.01, 0.05]
ROUNDS = 5
TARGET_SPEEDUP = 5.0

_RESULTS: dict[str, float] = {}
_ROW_COUNTER = itertools.count()


@pytest.fixture(scope="module")
def scaled_mondial():
    """A scaled-up synthetic Mondial (a few thousand rows)."""
    return load_mondial(
        extra_provinces_per_country=6,
        extra_cities_per_province=5,
        extra_lakes=300,
        extra_rivers=250,
        extra_mountains=200,
    )


@pytest.fixture(scope="module")
def warm_store(scaled_mondial):
    """A store whose bundle for the scaled database is already built."""
    store = ArtifactStore()
    store.get(scaled_mondial)
    return store


def _append_rows(database, count: int) -> None:
    """Append ``count`` valid City rows (the delta under measurement)."""
    city = database.table("City")
    for _ in range(count):
        serial = next(_ROW_COUNTER)
        city.insert((
            f"Benchtown {serial}",
            "United States",
            "Michigan",
            10_000 + serial,
            -84.0 - serial * 0.001,
            42.0 + serial * 0.001,
        ))


def test_bench_full_rebuild(benchmark, scaled_mondial):
    base_rows = scaled_mondial.total_rows

    def rebuild():
        return ArtifactStore().build(scaled_mondial)

    benchmark.pedantic(rebuild, rounds=ROUNDS, iterations=1)
    _RESULTS["rebuild_s"] = benchmark.stats.stats.min
    _RESULTS["base_rows"] = base_rows
    benchmark.extra_info["rows"] = base_rows


@pytest.mark.parametrize("fraction", DELTA_FRACTIONS)
def test_bench_incremental_refresh(benchmark, scaled_mondial, warm_store,
                                   fraction):
    delta_rows = max(1, int(scaled_mondial.total_rows * fraction))

    def grow():
        _append_rows(scaled_mondial, delta_rows)
        return (), {}

    def refresh():
        return warm_store.refresh(scaled_mondial)

    refreshes_before = warm_store.stats.refreshes
    benchmark.pedantic(refresh, setup=grow, rounds=ROUNDS, iterations=1)
    # Every round must have taken the delta path, not a silent rebuild.
    assert warm_store.stats.refreshes == refreshes_before + ROUNDS
    assert warm_store.stats.rebuild_fallbacks == 0
    _RESULTS[f"refresh_{fraction}_s"] = benchmark.stats.stats.min
    _RESULTS[f"refresh_{fraction}_rows"] = delta_rows
    benchmark.extra_info["delta_rows"] = delta_rows


def test_bench_incremental_report(benchmark):
    if "rebuild_s" not in _RESULTS:
        pytest.skip("rebuild benchmark did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rebuild_s = _RESULTS["rebuild_s"]
    lines = [
        "Incremental artifact refresh vs full rebuild "
        "(min over %d rounds each)" % ROUNDS,
        f"database: scaled Mondial, {_RESULTS['base_rows']} rows",
        f"full rebuild: {rebuild_s * 1000:.2f} ms",
    ]
    speedups = {}
    for fraction in DELTA_FRACTIONS:
        key = f"refresh_{fraction}_s"
        if key not in _RESULTS:
            continue
        refresh_s = _RESULTS[key]
        speedups[fraction] = rebuild_s / refresh_s
        lines.append(
            f"refresh {fraction:.0%} delta "
            f"({_RESULTS[f'refresh_{fraction}_rows']} rows): "
            f"{refresh_s * 1000:.2f} ms — {speedups[fraction]:.1f}x faster"
        )
    write_report("incremental_refresh", "\n".join(lines))
    # Acceptance target: >=5x faster refresh for <=1% appended rows.
    assert 0.01 in speedups
    assert speedups[0.01] >= TARGET_SPEEDUP, (
        f"refresh of a 1% delta is only {speedups[0.01]:.1f}x faster than "
        f"a rebuild (target {TARGET_SPEEDUP}x); see "
        "benchmarks/reports/incremental_refresh.txt"
    )
