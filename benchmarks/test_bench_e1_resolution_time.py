"""E1 — execution time versus constraint looseness (paper §2.4, claim 1).

"We observed that the overall execution time of user constraints did not
grow significantly as user constraints became loose (containing constraints
with disjunctions, value ranges, etc.)."

One benchmark per looseness level; each run performs a full discovery for
every workload case at that level.  The per-level mean discovery time table
is written to ``benchmarks/reports/e1_resolution_time.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.evaluation.experiments import (
    aggregate_resolution_sweep,
    run_resolution_sweep,
)
from repro.evaluation.reporting import format_table
from repro.workloads.degrade import DEFAULT_SWEEP_LEVELS, ResolutionLevel

_COLLECTED_ROWS: list[dict] = []


@pytest.mark.parametrize("level", DEFAULT_SWEEP_LEVELS, ids=lambda lvl: lvl.value)
def test_e1_discovery_time_per_level(benchmark, engine, mondial_db, cases, level):
    def run() -> list[dict]:
        return run_resolution_sweep(
            mondial_db,
            cases,
            levels=(level,),
            scheduler="bayesian",
            limits=BENCH_LIMITS,
            engine=engine,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _COLLECTED_ROWS.extend(rows)
    benchmark.extra_info["level"] = level.value
    benchmark.extra_info["mean_elapsed_seconds"] = sum(
        row["elapsed_seconds"] for row in rows
    ) / len(rows)
    # The paper's claim: no timeout at any looseness level and, whenever the
    # samples still span every target column, the ground truth keeps being
    # recovered.  Mostly-blank samples (partial/sparse) leave the mapping
    # genuinely ambiguous, so there we only record the recovery rate.
    assert all(not row["timed_out"] for row in rows)
    if level not in (ResolutionLevel.PARTIAL, ResolutionLevel.SPARSE):
        assert all(row["found_ground_truth"] for row in rows)


def test_e1_report(benchmark, cases):
    """Aggregate the sweep into the E1 table (runs after the level benches)."""
    if not _COLLECTED_ROWS:
        pytest.skip("level benchmarks did not run")
    summary = benchmark.pedantic(
        aggregate_resolution_sweep, args=(_COLLECTED_ROWS,), rounds=1, iterations=1
    )
    table = format_table(
        summary,
        columns=["level", "cases", "mean_elapsed_seconds", "mean_validations",
                 "ground_truth_rate", "timeout_rate"],
        title="E1: discovery time vs constraint looseness (Mondial synthetic cases)",
    )
    write_report("e1_resolution_time", table)
    exact = next(row for row in summary if row["level"] == ResolutionLevel.EXACT.value)
    loose_levels = [
        row for row in summary
        if row["level"] in (ResolutionLevel.DISJUNCTION.value,
                            ResolutionLevel.RANGE.value,
                            ResolutionLevel.MIXED.value)
    ]
    # Shape check: loosening constraints must not blow execution time up by
    # more than an order of magnitude over the exact case.
    for row in loose_levels:
        assert row["mean_elapsed_seconds"] <= max(exact["mean_elapsed_seconds"], 0.05) * 10
