"""E3 — filter-validation scheduling: Filter vs Prism vs optimum (§2.4, claim 3).

"Our approach significantly reduced the gap of the required number of
filter validations between Filter and the optimum (up to ~70%; on average
~30%), which shows our Bayesian-model-based approach can effectively
improve the filter scheduling."

One benchmark per scheduler measures the wall-clock of running all cases;
the validation-count table with per-case and aggregate gap reductions is
written to ``benchmarks/reports/e3_filter_validations.txt``.

Validation counts run under a *deterministic* budget — no wall-clock
limit (``time_limit=math.inf``) and a count-based cap that never binds
at this workload size — so the committed report is byte-stable across
machines and load conditions.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.evaluation.experiments import (
    aggregate_scheduler_comparison,
    run_scheduler_comparison,
)
from repro.evaluation.reporting import format_table
from repro.workloads.degrade import ResolutionLevel

_LEVEL = ResolutionLevel.MIXED
#: Deterministic run budget: infinite wall clock, count-capped validations.
_BUDGET = {"time_limit": math.inf, "validation_budget": 10_000}
_RESULT_ROWS: dict[str, list[dict]] = {}


@pytest.mark.parametrize("scheduler", ["filter", "bayesian", "optimal"])
def test_e3_scheduler_wall_clock(benchmark, engine, mondial_db, cases, scheduler):
    def run() -> list[dict]:
        return run_scheduler_comparison(
            mondial_db,
            cases,
            level=_LEVEL,
            schedulers=(scheduler,),
            limits=BENCH_LIMITS,
            engine=engine,
            **_BUDGET,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULT_ROWS[scheduler] = rows
    total_validations = sum(row[f"validations_{scheduler}"] for row in rows)
    benchmark.extra_info["scheduler"] = scheduler
    benchmark.extra_info["total_validations"] = total_validations


def test_e3_gap_reduction_report(benchmark, engine, mondial_db, cases):
    """Join the per-scheduler runs into the paper's gap-reduction table."""
    if set(_RESULT_ROWS) != {"filter", "bayesian", "optimal"}:
        # Recompute in one pass (e.g. when a single scheduler bench was run).
        rows = benchmark.pedantic(
            run_scheduler_comparison,
            args=(mondial_db, cases),
            kwargs={
                "level": _LEVEL,
                "limits": BENCH_LIMITS,
                "engine": engine,
                **_BUDGET,
            },
            rounds=1,
            iterations=1,
        )
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = []
        for case_index in range(len(cases)):
            merged: dict = {"case": cases[case_index].case_id, "level": _LEVEL.value}
            for scheduler, scheduler_rows in _RESULT_ROWS.items():
                merged.update(
                    {
                        key: value
                        for key, value in scheduler_rows[case_index].items()
                        if key.startswith(("validations_", "queries_"))
                    }
                )
            from repro.evaluation.metrics import gap_reduction

            merged["gap_reduction"] = gap_reduction(
                merged["validations_filter"],
                merged["validations_bayesian"],
                merged["validations_optimal"],
            )
            rows.append(merged)

    summary = aggregate_scheduler_comparison(rows)
    table = format_table(
        rows,
        columns=["case", "validations_filter", "validations_bayesian",
                 "validations_optimal", "gap_reduction"],
        title="E3: filter validations per scheduler (Mondial synthetic cases, "
              f"level={_LEVEL.value})",
    )
    summary_table = format_table(
        [summary],
        columns=["cases", "mean_validations_filter", "mean_validations_bayesian",
                 "mean_validations_optimal", "mean_gap_reduction",
                 "max_gap_reduction"],
        title="E3 summary (paper: avg gap reduction ~30%, max ~70%)",
    )
    write_report("e3_filter_validations", table + "\n\n" + summary_table)

    # Shape checks mirroring the paper's claim: the optimum is a lower bound,
    # Prism sits between Filter and the optimum, and the average gap
    # reduction is clearly positive.
    for row in rows:
        assert row["validations_optimal"] <= row["validations_bayesian"]
        assert row["validations_optimal"] <= row["validations_filter"]
        assert row["queries_filter"] == row["queries_bayesian"] == row["queries_optimal"]
    assert summary["mean_validations_bayesian"] <= summary["mean_validations_filter"]
    assert summary["mean_gap_reduction"] >= 0.2
