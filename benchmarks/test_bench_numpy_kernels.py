"""NumPy kernel backend vs pure-Python store on the exists hot path.

The e3/e4 experiments are dominated by existence probes: filter
validation issues thousands of ``exists``/``exists_batch`` calls whose
cost is pushdown scans plus join-key probing.  This harness measures
exactly that regime on both storage backends — the same deterministic
probe workload (single probes and batches, true and false outcomes,
joins that fail *in the join* rather than in pushdown) over a 3-table
chain built identically on each backend — and asserts

* probe outcomes and the full :class:`ExecutionStats` counter set are
  bit-for-bit identical across backends (the kernel path is
  accounting-transparent by design), and
* the NumPy backend decides the workload **>= 5x faster** than the
  pure-Python store,

then writes the comparison to ``benchmarks/reports/numpy_kernels.txt``.

The chain is built so join reachability is a congruence: ``T2`` row
``j`` reaches ``T0`` row ``j mod 2000``, ``T0``'s label classes are
``id mod 40`` and ``T2``'s are ``id mod 500``, so a (T0-label, T2-label)
probe is satisfiable iff the two class indexes agree mod
``gcd(40, 500) = 20`` — the workload's outcomes are exact and its false
probes carry non-empty selections on both endpoints, forcing real join
work instead of an early pushdown exit.

A tiny ``smoke`` benchmark (both backends, one batch + a text-text
edge, sub-second) runs in CI so kernel regressions fail fast without
the full workload.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.dataset import Column, Database, DataType
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.evaluation.reporting import format_table
from repro.query.executor import BatchProbe, ExecutionStats, Executor
from repro.query.pj_query import ProjectJoinQuery
from repro.storage import make_backend

_BACKENDS = ("python", "numpy")
_RESULTS: dict[str, dict] = {}

# Chain geometry (see the module docstring for the congruence argument).
_T0_ROWS = 2_000
_T1_ROWS = 20_000
_T2_ROWS = 40_000
_T0_CLASSES = 40
_T2_CLASSES = 500


def _build_chain(kind: str) -> Database:
    """The benchmark chain T2 -> T1 -> T0 on the requested backend."""
    database = Database(f"kernelbench-{kind}", backend=make_backend(kind))
    t0 = database.create_table(
        "T0", [Column("id", DataType.INT, primary_key=True),
               Column("label", DataType.TEXT)]
    )
    t1 = database.create_table(
        "T1", [Column("id", DataType.INT, primary_key=True),
               Column("parent_id", DataType.INT)]
    )
    t2 = database.create_table(
        "T2", [Column("id", DataType.INT, primary_key=True),
               Column("parent_id", DataType.INT),
               Column("label", DataType.TEXT)]
    )
    t0.insert_many([(i, f"g{i % _T0_CLASSES}") for i in range(_T0_ROWS)])
    t1.insert_many([(i, i % _T0_ROWS) for i in range(_T1_ROWS)])
    t2.insert_many(
        [(i, i % _T1_ROWS, f"h{i % _T2_CLASSES}") for i in range(_T2_ROWS)]
    )
    database.link("T1.parent_id", "T0.id")
    database.link("T2.parent_id", "T1.id")
    return database


def _probe_query() -> ProjectJoinQuery:
    return ProjectJoinQuery(
        (ColumnRef("T0", "label"), ColumnRef("T2", "label")),
        (ForeignKey("T1", "parent_id", "T0", "id"),
         ForeignKey("T2", "parent_id", "T1", "id")),
    )


def _workload() -> tuple[list[dict], list[list[BatchProbe]]]:
    """Deterministic single probes plus batches, mixed true/false.

    ``(a, b)`` pairs walk both congruence classes: satisfiable iff
    ``a % 20 == b % 20``, so roughly one probe in twenty is true and
    every false probe fails inside the join.
    """
    query = _probe_query()

    def predicates(a: int, b: int) -> dict:
        ga, hb = f"g{a}", f"h{b}"
        return {0: lambda v: v == ga, 1: lambda v: v == hb}

    singles = [
        predicates(a, (3 * a + offset) % _T2_CLASSES)
        for offset in (0, 1, 7, 20)
        for a in range(0, _T0_CLASSES, 5)
    ]
    batches = [
        [
            BatchProbe(query, predicates(a, (5 * a + offset) % _T2_CLASSES))
            for a in range(0, _T0_CLASSES, 4)
        ]
        for offset in (0, 2, 11, 20)
    ]
    return singles, batches


def _run_workload(database: Database) -> tuple[list[bool], ExecutionStats]:
    query = _probe_query()
    singles, batches = _workload()
    executor = Executor(database)
    outcomes = [
        executor.exists(query, cell_predicates=cp) for cp in singles
    ]
    for batch in batches:
        outcomes.extend(executor.exists_batch(batch))
    return outcomes, executor.stats


@pytest.fixture(scope="module")
def chain_dbs():
    """The identical chain on both backends (join indexes left cold)."""
    return {kind: _build_chain(kind) for kind in _BACKENDS}


@pytest.mark.parametrize("kind", _BACKENDS)
def test_numpy_kernels_e3e4_workload(benchmark, chain_dbs, kind):
    outcomes, stats = benchmark.pedantic(
        _run_workload,
        args=(chain_dbs[kind],),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    _RESULTS[kind] = {
        "outcomes": outcomes,
        "stats": stats,
        "seconds": benchmark.stats.stats.min,
    }
    benchmark.extra_info["backend"] = kind
    benchmark.extra_info["true_probes"] = sum(outcomes)


def test_numpy_kernels_report(benchmark, chain_dbs):
    """Join both backends into the report and assert the acceptance bar."""
    import time

    for kind in _BACKENDS:
        if kind not in _RESULTS:
            started = time.perf_counter()
            outcomes, stats = _run_workload(chain_dbs[kind])
            _RESULTS[kind] = {
                "outcomes": outcomes,
                "stats": stats,
                "seconds": time.perf_counter() - started,
            }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    python, numpy = _RESULTS["python"], _RESULTS["numpy"]

    # Bit-for-bit identical probe outcomes and executor accounting.
    assert numpy["outcomes"] == python["outcomes"]
    assert numpy["stats"] == python["stats"]

    speedup = python["seconds"] / numpy["seconds"]
    table_rows = [
        {
            "backend": kind,
            "seconds": round(_RESULTS[kind]["seconds"], 4),
            "probes": len(_RESULTS[kind]["outcomes"]),
            "true_probes": sum(_RESULTS[kind]["outcomes"]),
            "rows_scanned": _RESULTS[kind]["stats"].rows_scanned,
            "joins_performed": _RESULTS[kind]["stats"].joins_performed,
        }
        for kind in _BACKENDS
    ]
    table = format_table(
        table_rows,
        columns=["backend", "seconds", "probes", "true_probes",
                 "rows_scanned", "joins_performed"],
        title="Existence-probe hot path: python vs numpy backend "
              f"(e3/e4-style workload, {_T0_ROWS}/{_T1_ROWS}/{_T2_ROWS}-row "
              "chain)",
    )
    summary = format_table(
        [{
            "speedup": f"{speedup:.1f}x",
            "identical_outcomes": True,
            "identical_stats": True,
        }],
        columns=["speedup", "identical_outcomes", "identical_stats"],
        title="NumPy kernel summary (target: >=5x, bit-for-bit equality)",
    )
    write_report("numpy_kernels", table + "\n\n" + summary)

    assert speedup >= 5.0, (
        f"numpy backend only {speedup:.2f}x over the python store"
    )


# ----------------------------------------------------------------------
# CI smoke: both backends, one batch + a text-text edge, sub-second.
# ----------------------------------------------------------------------
def _smoke_database(kind: str) -> Database:
    database = Database(f"kernelsmoke-{kind}", backend=make_backend(kind))
    left = database.create_table(
        "L", [Column("k", DataType.TEXT), Column("v", DataType.INT)]
    )
    right = database.create_table(
        "R", [Column("k", DataType.TEXT), Column("w", DataType.INT)]
    )
    left.insert_many([(f"k{i % 23}", i) for i in range(2_000)])
    right.insert_many([(f"k{i % 29}", i * 3) for i in range(2_000)])
    database.link("L.k", "R.k")
    return database


def test_numpy_kernels_smoke(benchmark):
    """Both backends on one small text-joined workload, equal bit for bit."""
    query = ProjectJoinQuery(
        (ColumnRef("L", "v"), ColumnRef("R", "w")),
        (ForeignKey("L", "k", "R", "k"),),
    )
    probes = [
        BatchProbe(query, {0: (lambda bound: lambda v: v > bound)(b)})
        for b in (10, 500, 1_500, 1_999)
    ]

    def run(kind: str):
        database = _smoke_database(kind)
        executor = Executor(database)
        outcomes = [
            executor.exists(query, cell_predicates=p.cell_predicates)
            for p in probes
        ]
        outcomes.extend(executor.exists_batch(probes))
        return outcomes, executor.stats, executor

    python_outcomes, python_stats, __ = run("python")
    numpy_outcomes, numpy_stats, numpy_executor = benchmark.pedantic(
        run, args=("numpy",), rounds=1, iterations=1
    )
    assert numpy_outcomes == python_outcomes
    assert numpy_stats == python_stats
    # The numpy run must actually have taken the kernel path.
    assert numpy_executor._edge_kernels
