"""E5 — the §1/§3 motivating demo: Lake Tahoe on Mondial.

Benchmarks the complete interactive round a demo attendee triggers: parse
the multiresolution constraints ("California || Nevada", "Lake Tahoe",
"DataType=='decimal' AND MinValue>=0"), discover the mappings, and build the
explanation graph of the selected query.  Verifies the paper's target SQL
query is among the results.  Report: ``benchmarks/reports/e5_demo_walkthrough.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.constraints.parser import parse_metadata_constraint, parse_value_constraint
from repro.constraints.spec import MappingSpec
from repro.evaluation.reporting import format_table
from repro.explain.graph import QueryGraph
from repro.explain.render import to_ascii

_TARGET_SQL = (
    "SELECT geo_lake.Province, Lake.Name, Lake.Area "
    "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
)


def _build_spec() -> MappingSpec:
    spec = MappingSpec(3)
    spec.add_sample_cells(
        [
            parse_value_constraint("California || Nevada"),
            parse_value_constraint("Lake Tahoe"),
            None,
        ]
    )
    spec.set_metadata(
        2, parse_metadata_constraint("DataType=='decimal' AND MinValue>=0")
    )
    return spec


def test_e5_lake_tahoe_walkthrough(benchmark, engine):
    def run():
        spec = _build_spec()
        result = engine.discover(spec)
        sqls = result.sql()
        index = sqls.index(_TARGET_SQL) if _TARGET_SQL in sqls else 0
        graph = QueryGraph.from_query(result.queries[index], spec=spec)
        return result, to_ascii(graph)

    result, explanation = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _TARGET_SQL in result.sql()
    assert "California || Nevada" in explanation
    benchmark.extra_info["num_queries"] = result.num_queries
    benchmark.extra_info["validations"] = result.stats.validations

    rows = [
        {
            "num_satisfying_queries": result.num_queries,
            "candidates": result.stats.num_candidates,
            "filters": result.stats.num_filters,
            "validations": result.stats.validations,
            "elapsed_seconds": result.stats.elapsed_seconds,
            "target_query_found": _TARGET_SQL in result.sql(),
        }
    ]
    table = format_table(rows, title="E5: Lake Tahoe demo walk-through (Mondial)")
    write_report("e5_demo_walkthrough", table + "\n\nExplanation graph:\n" + explanation)


def test_e5_exact_sample_round(benchmark, engine):
    """The same target schema described with a fully exact sample (§1, Table 1)."""

    def run():
        spec = MappingSpec(3)
        spec.add_sample_cells(
            [
                parse_value_constraint("California"),
                parse_value_constraint("Lake Tahoe"),
                parse_value_constraint("497"),
            ]
        )
        return engine.discover(spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _TARGET_SQL in result.sql()
    benchmark.extra_info["num_queries"] = result.num_queries
