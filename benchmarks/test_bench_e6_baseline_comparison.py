"""E6 — the "high-resolution issue" (§1): sample-driven baseline vs Prism.

A sample-driven system (MWeaver-style) requires complete rows of exact
values, so it cannot even ingest the medium/low-resolution specs a user
without precise knowledge can provide, while Prism still recovers the
ground-truth mapping.  Report: ``benchmarks/reports/e6_baseline_comparison.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.evaluation.experiments import run_baseline_comparison
from repro.evaluation.metrics import mean
from repro.evaluation.reporting import format_table
from repro.workloads.degrade import ResolutionLevel

_LEVELS = (
    ResolutionLevel.EXACT,
    ResolutionLevel.DISJUNCTION,
    ResolutionLevel.SPARSE,
)


def test_e6_baseline_comparison(benchmark, mondial_db, cases):
    def run() -> list[dict]:
        return run_baseline_comparison(
            mondial_db, cases, levels=_LEVELS, limits=BENCH_LIMITS
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        rows,
        columns=["case", "level", "baseline_supported", "baseline_found_truth",
                 "prism_found_truth", "prism_num_queries"],
        title="E6: sample-driven (MWeaver-style) baseline vs Prism",
    )

    by_level: dict[str, list[dict]] = {}
    for row in rows:
        by_level.setdefault(row["level"], []).append(row)
    summary = [
        {
            "level": level,
            "baseline_support_rate": mean(
                1.0 if row["baseline_supported"] else 0.0 for row in level_rows
            ),
            "prism_ground_truth_rate": mean(
                1.0 if row["prism_found_truth"] else 0.0 for row in level_rows
            ),
        }
        for level, level_rows in by_level.items()
    ]
    summary_table = format_table(summary, title="E6 summary")
    write_report("e6_baseline_comparison", table + "\n\n" + summary_table)

    # The paper's point: only exact complete samples are usable by the
    # baseline; Prism keeps finding the ground truth at every resolution.
    assert all(row["baseline_supported"] for row in by_level["exact"])
    assert all(not row["baseline_supported"] for row in by_level["disjunct"])
    assert all(not row["baseline_supported"] for row in by_level["sparse"])
    # Prism always recovers the ground truth when the sample spans every
    # column (exact/disjunction); mostly-blank sparse samples are genuinely
    # ambiguous, so overall recall only has to stay high.
    assert all(row["prism_found_truth"] for row in by_level["exact"])
    assert all(row["prism_found_truth"] for row in by_level["disjunct"])
    assert mean(
        1.0 if row["prism_found_truth"] else 0.0 for row in rows
    ) >= 0.8
    benchmark.extra_info["levels"] = [level.value for level in _LEVELS]
