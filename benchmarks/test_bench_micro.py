"""Micro-benchmarks of the substrate the discovery pipeline sits on.

These are not experiments from the paper; they track the cost of the
preprocessing steps the paper assumes are cheap (inverted index, metadata
catalog, Bayesian training) and of the core runtime operations (join
execution, join-tree enumeration, filter decomposition).
"""

from __future__ import annotations

from repro.bayesian.training import train_models
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.index import InvertedIndex
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.dataset.schema_graph import SchemaGraph
from repro.discovery.filters import build_filters
from repro.query.executor import Executor
from repro.query.pj_query import ProjectJoinQuery


def test_micro_inverted_index_build(benchmark, mondial_db):
    index = benchmark(InvertedIndex.build, mondial_db)
    assert index.indexed_cells > 0


def test_micro_metadata_catalog_build(benchmark, mondial_db):
    catalog = benchmark(MetadataCatalog.build, mondial_db)
    assert len(catalog) > 0


def test_micro_bayesian_training(benchmark, mondial_db):
    models = benchmark(train_models, mondial_db)
    assert models.num_relation_models == len(mondial_db.table_names)


def test_micro_index_lookup(benchmark, mondial_db):
    index = InvertedIndex.build(mondial_db)
    columns = benchmark(index.columns_containing, "Lake Tahoe")
    assert ColumnRef("Lake", "Name") in columns


def test_micro_join_tree_enumeration(benchmark, mondial_db):
    graph = SchemaGraph(mondial_db)
    trees = benchmark(
        graph.join_trees, {"Lake", "Province"}, 4, 50
    )
    assert trees


def test_micro_two_table_join_execution(benchmark, mondial_db):
    executor = Executor(mondial_db)
    query = ProjectJoinQuery(
        (
            ColumnRef("geo_lake", "Province"),
            ColumnRef("Lake", "Name"),
            ColumnRef("Lake", "Area"),
        ),
        (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
    )
    rows = benchmark(executor.execute, query)
    assert rows


def test_micro_filtered_existence_probe(benchmark, mondial_db):
    executor = Executor(mondial_db)
    query = ProjectJoinQuery(
        (ColumnRef("geo_lake", "Province"), ColumnRef("Lake", "Name")),
        (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
    )
    predicates = {0: OneOf(["California", "Nevada"]).matches,
                  1: ExactValue("Lake Tahoe").matches}
    exists = benchmark(executor.exists, query, predicates)
    assert exists


def test_micro_filter_decomposition(benchmark, engine):
    spec = MappingSpec(3)
    spec.add_sample_cells(
        [OneOf(["California", "Nevada"]), ExactValue("Lake Tahoe"), None]
    )
    candidates = engine.candidate_queries(spec)

    filter_set = benchmark(build_filters, spec, candidates)
    assert filter_set.num_filters > 0


def test_micro_full_discovery_round(benchmark, engine):
    spec = MappingSpec(2)
    spec.add_sample_cells([ExactValue("Crater Lake"), ExactValue("Oregon")])

    result = benchmark(engine.discover, spec)
    assert result.num_queries >= 1
