"""Plan sharing — batched vs per-candidate validation (ISSUE 5).

The planner keys physical plans by canonical join-structure hash and the
validation driver batches filters sharing one join prefix into single
executor passes.  This harness measures both effects on an e3-style
filter-validation workload (ground-truth cases from a WorkloadGenerator,
MIXED resolution, the default bayesian scheduler) over a synthetic
database large enough that validation dominates the round — the regime
the paper's e3 experiment is about.  One benchmark per mode runs the
identical workload with batching on and off; the report test then
asserts

* discovery results and validation counts are bit-for-bit identical
  across modes,
* the batched mode performs **>= 2x fewer join builds** (probe-step
  resolutions, equivalently join-index touches) than per-candidate
  execution, and
* the batched mode wins on wall clock,

and writes the comparison to ``benchmarks/reports/plan_sharing.txt``.

A tiny ``smoke`` benchmark (one batched pass over a four-probe batch on
a hand-built database) runs in CI so planner/batching regressions fail
fast without the full workload.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.dataset import Column, Database, DataType
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.datasets.synthetic import generate_synthetic_database
from repro.discovery import GenerationLimits, Prism
from repro.evaluation.reporting import format_table
from repro.query.executor import BatchProbe, Executor
from repro.query.pj_query import ProjectJoinQuery
from repro.workloads.degrade import ResolutionLevel, spec_for_level
from repro.workloads.generator import WorkloadGenerator

_LEVEL = ResolutionLevel.MIXED
_MODES = ("per_candidate", "batched")
_RESULTS: dict[str, dict] = {}
_LIMITS = GenerationLimits(
    max_candidates=200, max_assignments=400, max_trees_per_assignment=6
)


@pytest.fixture(scope="module")
def sharing_db():
    """A synthetic database big enough that validation dominates."""
    return generate_synthetic_database(
        num_tables=6, rows_per_table=2500, topology="random", seed=9
    )


@pytest.fixture(scope="module")
def base_engine(sharing_db):
    """One preprocessing pass shared by every per-round engine."""
    return Prism(sharing_db, limits=_LIMITS)


@pytest.fixture(scope="module")
def sharing_cases(sharing_db):
    generator = WorkloadGenerator(sharing_db, seed=21)
    return [
        generator.generate_case(num_columns=3, num_tables=2) for __ in range(3)
    ]


def _fresh_engine(base: Prism, batched: bool) -> Prism:
    """A cold-cache engine over the shared artifacts (cheap to build)."""
    return Prism(
        base.database,
        limits=_LIMITS,
        batch_validation=batched,
        train_bayesian=False,
        index=base.index,
        catalog=base.catalog,
        schema_graph=base.schema_graph,
        models=base.models,
    )


def _run_workload(base: Prism, cases, batched: bool):
    engine = _fresh_engine(base, batched)
    results = []
    for case in cases:
        spec = spec_for_level(
            case, _LEVEL, base.database, catalog=base.catalog, seed=0
        )
        results.append(engine.discover(spec, scheduler="bayesian"))
    return results


def _totals(results) -> dict:
    return {
        "joins_performed": sum(r.stats.joins_performed for r in results),
        "join_index_touches": sum(
            r.stats.join_index_hits + r.stats.join_index_builds
            for r in results
        ),
        "validations": sum(r.stats.validations for r in results),
        "validation_batches": sum(
            r.stats.validation_batches for r in results
        ),
        "batched_outcomes": sum(r.stats.batched_outcomes for r in results),
        "queries": [r.sql() for r in results],
    }


@pytest.mark.parametrize("mode", _MODES)
def test_plan_sharing_e3_workload(benchmark, base_engine, sharing_cases, mode):
    batched = mode == "batched"
    results = benchmark.pedantic(
        _run_workload,
        args=(base_engine, sharing_cases, batched),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    _RESULTS[mode] = {
        "totals": _totals(results),
        "seconds": benchmark.stats.stats.min,
    }
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["joins_performed"] = _RESULTS[mode]["totals"][
        "joins_performed"
    ]


def test_plan_sharing_report(benchmark, base_engine, sharing_cases):
    """Join the two modes into the sharing report and assert the wins."""
    import time

    for mode in _MODES:
        if mode not in _RESULTS:
            started = time.perf_counter()
            results = _run_workload(
                base_engine, sharing_cases, mode == "batched"
            )
            _RESULTS[mode] = {
                "totals": _totals(results),
                "seconds": time.perf_counter() - started,
            }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    per_candidate = _RESULTS["per_candidate"]
    batched = _RESULTS["batched"]

    # Identical discovery output, identical validation accounting.
    assert batched["totals"]["queries"] == per_candidate["totals"]["queries"]
    assert (
        batched["totals"]["validations"]
        == per_candidate["totals"]["validations"]
    )

    join_ratio = per_candidate["totals"]["joins_performed"] / max(
        batched["totals"]["joins_performed"], 1
    )
    speedup = per_candidate["seconds"] / batched["seconds"]

    table_rows = [
        {
            "mode": mode,
            "seconds": round(_RESULTS[mode]["seconds"], 4),
            "joins_performed": _RESULTS[mode]["totals"]["joins_performed"],
            "join_index_touches": _RESULTS[mode]["totals"]["join_index_touches"],
            "validations": _RESULTS[mode]["totals"]["validations"],
            "validation_batches": _RESULTS[mode]["totals"]["validation_batches"],
            "batched_outcomes": _RESULTS[mode]["totals"]["batched_outcomes"],
        }
        for mode in _MODES
    ]
    table = format_table(
        table_rows,
        columns=["mode", "seconds", "joins_performed", "join_index_touches",
                 "validations", "validation_batches", "batched_outcomes"],
        title="Plan sharing: batched vs per-candidate validation "
              f"(e3-style workload, level={_LEVEL.value}, "
              "6x2500-row synthetic db)",
    )
    summary_table = format_table(
        [{
            "join_build_reduction": f"{join_ratio:.1f}x",
            "wall_clock_speedup": f"{speedup:.2f}x",
            "identical_results": True,
        }],
        columns=["join_build_reduction", "wall_clock_speedup",
                 "identical_results"],
        title="Plan-sharing summary (target: >=2x fewer join builds, "
              "wall-clock win)",
    )
    write_report("plan_sharing", table + "\n\n" + summary_table)

    assert join_ratio >= 2.0, (
        f"batched validation only reduced join builds by {join_ratio:.2f}x"
    )
    assert speedup > 1.0, (
        f"batched validation was not a wall-clock win ({speedup:.2f}x)"
    )


# ----------------------------------------------------------------------
# CI smoke: one tiny batched pass, no workload, sub-second.
# ----------------------------------------------------------------------
def _smoke_database() -> Database:
    database = Database("plansmoke")
    left = database.create_table(
        "L", [Column("k", DataType.TEXT), Column("v", DataType.INT)]
    )
    right = database.create_table(
        "R", [Column("k", DataType.TEXT), Column("w", DataType.INT)]
    )
    left.insert_many([(f"k{i % 17}", i) for i in range(400)])
    right.insert_many([(f"k{i % 17}", i * 10) for i in range(400)])
    database.link("L.k", "R.k")
    return database


def test_plan_sharing_smoke(benchmark):
    """One batched four-probe pass; asserts sharing vs per-probe exists."""
    database = _smoke_database()
    query = ProjectJoinQuery(
        (ColumnRef("L", "v"), ColumnRef("R", "w")),
        (ForeignKey("L", "k", "R", "k"),),
    )
    probes = [
        BatchProbe(query, {0: (lambda bound: lambda v: v > bound)(b)})
        for b in (10, 100, 200, 399)
    ]

    def run() -> int:
        executor = Executor(database)
        outcomes = executor.exists_batch(probes)
        assert outcomes == [True, True, True, False]
        return executor.stats.joins_performed

    batched_joins = benchmark(run)
    per_probe = Executor(database)
    for p in probes:
        per_probe.exists(p.query, cell_predicates=p.cell_predicates)
    assert per_probe.stats.joins_performed >= 2 * batched_joins
