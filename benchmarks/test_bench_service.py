"""Service-layer benchmark: single-thread vs thread-pool vs process shards.

Drives the built-in mixed-database demo workload through the
:class:`~repro.api.DiscoveryService` three ways — synchronously on the
calling thread (``execute``), through the GIL-bound thread pool, and
through the process-shard executor where each worker process owns its
databases outright — over pre-warmed artifact stores, so the numbers
isolate the serving path from preprocessing.  Requests/second for all
three modes are written to ``benchmarks/reports/service_throughput.txt``.

CPython's GIL bounds the thread-pool speedup for this pure-Python
engine; process shards sidestep the GIL entirely, so on a multi-core
host the sharded figure must clear a 2.5x floor over single-thread.
The floor is only asserted when the host actually has >= 4 cores (the
executor cannot out-run the hardware); result equality between the
thread and process executors is asserted unconditionally.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.api import ArtifactStore, DiscoveryService, demo_requests

ROUNDS = 2  # 2 x 3 databases = 6 requests per measured batch
WORKERS = 4
SCALING_FLOOR = 2.5  # required process-shard speedup over single-thread
MIN_CORES_FOR_FLOOR = 4

_RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module")
def warm_service():
    """A started thread-pool service whose artifact store is already warm."""
    store = ArtifactStore()
    service = DiscoveryService(
        store=store,
        workers=WORKERS,
        queue_size=64,
        limits=BENCH_LIMITS,
    )
    service.start()
    # Warm every bundle so the measured paths are pure serving.
    for request in demo_requests(rounds=1):
        response = service.execute(request)
        assert response.ok
    yield service
    service.shutdown()


@pytest.fixture(scope="module")
def sharded_service():
    """A started process-shard service; shards warm their bundles on start."""
    service = DiscoveryService(
        workers=WORKERS,
        queue_size=64,
        shard_mode="process",
        limits=BENCH_LIMITS,
    )
    service.start()
    yield service
    service.shutdown()


def _requests():
    return demo_requests(rounds=ROUNDS)


def test_bench_service_single_thread(benchmark, warm_service):
    requests = _requests()

    def serve_serially():
        responses = [warm_service.execute(request) for request in requests]
        assert all(response.ok for response in responses)
        return responses

    started = time.perf_counter()
    benchmark.pedantic(serve_serially, rounds=3, iterations=1)
    elapsed = time.perf_counter() - started
    _RESULTS["single_rps"] = (3 * len(requests)) / elapsed
    benchmark.extra_info["requests"] = len(requests)


def test_bench_service_thread_pool(benchmark, warm_service):
    requests = _requests()

    def serve_pooled():
        responses = warm_service.run_batch(requests)
        assert all(response.ok for response in responses)
        return responses

    started = time.perf_counter()
    responses = benchmark.pedantic(serve_pooled, rounds=3, iterations=1)
    elapsed = time.perf_counter() - started
    _RESULTS["pooled_rps"] = (3 * len(requests)) / elapsed
    _RESULTS["thread_sql"] = [response.result.sql() for response in responses]
    benchmark.extra_info["workers"] = WORKERS
    # The artifact store never rebuilt during serving.
    assert warm_service.store.stats.builds == 3


def test_bench_service_process_shards(benchmark, sharded_service):
    requests = _requests()
    assert sharded_service.shard_mode == "process"

    def serve_sharded():
        responses = sharded_service.run_batch(requests)
        assert all(response.ok for response in responses)
        return responses

    started = time.perf_counter()
    responses = benchmark.pedantic(serve_sharded, rounds=3, iterations=1)
    elapsed = time.perf_counter() - started
    _RESULTS["sharded_rps"] = (3 * len(requests)) / elapsed
    _RESULTS["process_sql"] = [response.result.sql() for response in responses]
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cpu_cores"] = os.cpu_count()

    # Executor equivalence: the shards return bit-for-bit the same SQL the
    # thread pool does for the same workload.
    if "thread_sql" in _RESULTS:
        assert _RESULTS["process_sql"] == _RESULTS["thread_sql"]

    # Scaling floor: only meaningful when the hardware can parallelize.
    cores = os.cpu_count() or 1
    if cores >= MIN_CORES_FOR_FLOOR and "single_rps" in _RESULTS:
        speedup = _RESULTS["sharded_rps"] / _RESULTS["single_rps"]
        assert speedup >= SCALING_FLOOR, (
            f"process shards reached only {speedup:.2f}x over single-thread "
            f"on {cores} cores (floor: {SCALING_FLOOR}x)"
        )


def test_bench_service_report(benchmark, warm_service, sharded_service):
    needed = {"single_rps", "pooled_rps", "sharded_rps"}
    if not needed <= set(_RESULTS):
        pytest.skip("throughput benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    metrics = warm_service.metrics()
    artifacts = metrics.artifacts
    shard_metrics = sharded_service.metrics()
    cores = os.cpu_count() or 1
    speedup = _RESULTS["sharded_rps"] / _RESULTS["single_rps"]
    floor_note = (
        f">= {SCALING_FLOOR}x floor asserted"
        if cores >= MIN_CORES_FOR_FLOOR
        else f"floor not asserted (< {MIN_CORES_FOR_FLOOR} cores)"
    )
    shard_breakdown = ", ".join(
        f"shard {shard_id}: {info['served']} served"
        for shard_id, info in sorted(shard_metrics.shards.items())
    )
    lines = [
        "Service throughput: execute() vs thread pool vs process shards",
        f"workload: {ROUNDS * 3} mixed-database requests "
        f"(mondial/imdb/nba), {WORKERS} workers, {cores} cpu cores",
        f"single-thread:  {_RESULTS['single_rps']:.1f} requests/s",
        f"thread-pool:    {_RESULTS['pooled_rps']:.1f} requests/s",
        f"process-shards: {_RESULTS['sharded_rps']:.1f} requests/s "
        f"({speedup:.2f}x single-thread; {floor_note})",
        "result equality: thread-pool and process-shard SQL identical",
        f"artifact store (thread pool): {artifacts['builds']} builds, "
        f"{artifacts['hits']} hits (one build per database)",
        f"shards: {shard_breakdown}",
        f"latency (thread pool): mean "
        f"{metrics.latency_mean_seconds * 1000:.1f} ms, "
        f"p95 {metrics.latency_p95_seconds * 1000:.1f} ms",
    ]
    write_report("service_throughput", "\n".join(lines))
