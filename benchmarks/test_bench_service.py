"""Service-layer benchmark: single-thread vs pooled serving throughput.

Drives the built-in mixed-database demo workload through one
:class:`~repro.service.DiscoveryService` twice — once synchronously on the
calling thread (``execute``), once through the worker pool (``run_batch``)
— over a pre-warmed artifact store, so the numbers isolate the serving
path from preprocessing.  Requests/second for both modes are written to
``benchmarks/reports/service_throughput.txt``.

CPython's GIL bounds the parallel speedup for this pure-Python engine;
the pooled number is still the honest serving figure because it includes
queueing, dispatch and metrics overhead under concurrency.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.service import ArtifactStore, DiscoveryService, demo_requests

ROUNDS = 2  # 2 x 3 databases = 6 requests per measured batch
WORKERS = 4

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def warm_service():
    """A started service whose artifact store is already warm."""
    store = ArtifactStore()
    service = DiscoveryService(
        store=store,
        num_workers=WORKERS,
        queue_size=64,
        limits=BENCH_LIMITS,
    )
    service.start()
    # Warm every bundle so the measured paths are pure serving.
    for request in demo_requests(rounds=1):
        response = service.execute(request)
        assert response.ok
    yield service
    service.shutdown()


def _requests():
    return demo_requests(rounds=ROUNDS)


def test_bench_service_single_thread(benchmark, warm_service):
    requests = _requests()

    def serve_serially():
        responses = [warm_service.execute(request) for request in requests]
        assert all(response.ok for response in responses)
        return responses

    started = time.perf_counter()
    benchmark.pedantic(serve_serially, rounds=3, iterations=1)
    elapsed = time.perf_counter() - started
    _RESULTS["single_rps"] = (3 * len(requests)) / elapsed
    benchmark.extra_info["requests"] = len(requests)


def test_bench_service_worker_pool(benchmark, warm_service):
    requests = _requests()

    def serve_pooled():
        responses = warm_service.run_batch(requests)
        assert all(response.ok for response in responses)
        return responses

    started = time.perf_counter()
    benchmark.pedantic(serve_pooled, rounds=3, iterations=1)
    elapsed = time.perf_counter() - started
    _RESULTS["pooled_rps"] = (3 * len(requests)) / elapsed
    benchmark.extra_info["workers"] = WORKERS
    # The artifact store never rebuilt during serving.
    assert warm_service.store.stats.builds == 3


def test_bench_service_report(benchmark, warm_service):
    if "single_rps" not in _RESULTS or "pooled_rps" not in _RESULTS:
        pytest.skip("throughput benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    metrics = warm_service.metrics()
    artifacts = metrics.artifacts
    lines = [
        "Service throughput: single-thread execute() vs worker-pool run_batch()",
        f"workload: {ROUNDS * 3} mixed-database requests "
        f"(mondial/imdb/nba), {WORKERS} workers",
        f"single-thread: {_RESULTS['single_rps']:.1f} requests/s",
        f"worker-pool:   {_RESULTS['pooled_rps']:.1f} requests/s",
        f"artifact store: {artifacts['builds']} builds, "
        f"{artifacts['hits']} hits (one build per database)",
        f"latency: mean {metrics.latency_mean_seconds * 1000:.1f} ms, "
        f"p95 {metrics.latency_p95_seconds * 1000:.1f} ms",
    ]
    write_report("service_throughput", "\n".join(lines))
