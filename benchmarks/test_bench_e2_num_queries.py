"""E2 — number of satisfying mappings versus constraint looseness (§2.4, claim 2).

"Meanwhile, the number of satisfying schema mapping queries discovered did
not increase much (unless when there were too many missing values)."

The benchmark runs the same resolution sweep as E1 but reports the number
of satisfying queries per level; the table is written to
``benchmarks/reports/e2_num_queries.txt``.

The sweep runs under a *deterministic* budget — no wall-clock limit
(``time_limit=math.inf``) and a count-based validation cap that never
binds at this workload size — so the committed report is byte-stable
across machines and load conditions.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import BENCH_LIMITS, write_report
from repro.evaluation.experiments import (
    aggregate_resolution_sweep,
    run_resolution_sweep,
)
from repro.evaluation.reporting import format_table
from repro.workloads.degrade import DEFAULT_SWEEP_LEVELS, ResolutionLevel


def test_e2_num_satisfying_queries(benchmark, engine, mondial_db, cases):
    def run() -> list[dict]:
        return run_resolution_sweep(
            mondial_db,
            cases,
            levels=DEFAULT_SWEEP_LEVELS,
            scheduler="bayesian",
            time_limit=math.inf,
            validation_budget=10_000,
            limits=BENCH_LIMITS,
            engine=engine,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = aggregate_resolution_sweep(rows)
    table = format_table(
        summary,
        columns=["level", "cases", "mean_num_queries", "ground_truth_rate"],
        title="E2: number of satisfying mappings vs constraint looseness",
    )
    write_report("e2_num_queries", table)

    by_level = {row["level"]: row for row in summary}
    exact = by_level[ResolutionLevel.EXACT.value]
    benchmark.extra_info["exact_mean_queries"] = exact["mean_num_queries"]
    for level in (ResolutionLevel.DISJUNCTION, ResolutionLevel.RANGE,
                  ResolutionLevel.MIXED):
        row = by_level[level.value]
        benchmark.extra_info[f"{level.value}_mean_queries"] = row["mean_num_queries"]
        # Shape check: medium-resolution constraints do not blow up the
        # number of satisfying queries by more than ~3x over exact samples.
        assert row["mean_num_queries"] <= max(exact["mean_num_queries"], 1.0) * 3
    # The sparse level (many missing values) is the paper's exception: it is
    # allowed to (and generally does) return noticeably more queries.
    sparse = by_level[ResolutionLevel.SPARSE.value]
    assert sparse["mean_num_queries"] >= exact["mean_num_queries"]
