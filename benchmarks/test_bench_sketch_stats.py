"""Sketch statistics — Bloom/HLL-informed validation on skewed data (ISSUE 10).

The planner's classic containment model misfires on Zipf-skewed join keys
with dangling foreign keys: raw row/distinct counts say a join is dense
while almost no key actually matches.  The sketch layer fixes both sides
of that — HLL overlap corrects the estimates, and the join-key Bloom
filters let ``exists_batch`` prove a probe's pushed-down rows can never
join *before* any join structure is built.

This harness builds a 4-table chain of 100k-row tables with ``skew=1.1``
and ``dangling_fk_fraction=0.98`` (numpy backend, so the kernel semijoin
path is live) and drives two workloads with sketches on and off:

* **discovery** — seven multi-sample specs whose samples constrain the
  tail table's ``label`` (and a second column on ``T1``); for the "dead"
  specs every sampled label's rows have dangling parents, so the Bloom
  filters prune whole validation batches before the join is walked;
* **probe batch** — one ``exists_batch`` call over a 3-table structure
  whose probes pair dead ``T3`` labels with ``T1`` labels, the shape
  where every surviving probe pays an uncacheable per-probe semijoin
  fold.

The report test asserts discovery results are bit-for-bit identical
across modes, that sketches cut ``joins_performed`` by **>= 2x**, and
that the probe-batch pass wins on wall clock; the comparison is written
to ``benchmarks/reports/sketch_stats.txt``.

A small ``smoke`` benchmark (4k-row tables on the process-default
backend) runs in CI on both ``PRISM_STORAGE_BACKEND`` values so sketch
regressions fail fast without the full workload.
"""

from __future__ import annotations

import math
import statistics
import time
from collections import defaultdict

import pytest

from benchmarks.conftest import write_report
from repro.constraints.parser import parse_value_constraint
from repro.constraints.spec import MappingSpec
from repro.dataset.schema import ColumnRef
from repro.datasets.synthetic import generate_synthetic_database
from repro.discovery import GenerationLimits, Prism
from repro.evaluation.reporting import format_table
from repro.query.executor import BatchProbe
from repro.query.pj_query import ProjectJoinQuery
from repro.storage import default_backend, make_backend

_MODES = ("sketches", "raw")
_ROWS = 100_000
_SKEW = 1.1
_DANGLING = 0.98
_SEED = 9
_LIMITS = GenerationLimits(
    max_candidates=200, max_assignments=400, max_trees_per_assignment=6
)
#: Deterministic run budget: infinite wall clock, count-capped validations.
_BUDGET = {"time_limit": math.inf, "validation_budget": 10_000}
_DISCOVERY: dict[str, dict] = {}
_PROBES: dict[str, dict] = {}


# ----------------------------------------------------------------------
# Workload construction (built once; rebuilding specs between runs
# would reintroduce the report wobble the deterministic budget removes)
# ----------------------------------------------------------------------
def _label_pools(database, rows):
    """Dead tail-table labels and live label chains, read off the data.

    A ``T3`` label is *dead* when every one of its rows has a dangling
    ``parent_id`` — no candidate joining through ``T3`` can ever match
    it, which is exactly what the ``T2.id`` Bloom filter proves.  A
    *live pair* is a ``(T3.label, T1.label)`` combination realized by an
    actual parent chain, so specs built from live pairs discover
    non-empty results.
    """
    t3 = database.table("T3")
    by_label = defaultdict(list)
    for label, parent in zip(
        t3.column_values("label"), t3.column_values("parent_id")
    ):
        by_label[label].append(parent)
    dead = sorted(
        label
        for label, parents in by_label.items()
        if all(parent >= rows for parent in parents)
    )
    t2 = database.table("T2")
    t1 = database.table("T1")
    t2_rows = {v: i for i, v in enumerate(t2.column_values("id"))}
    t1_rows = {v: i for i, v in enumerate(t1.column_values("id"))}
    t2_parent = t2.column_values("parent_id")
    t1_label = t1.column_values("label")
    t3_label = t3.column_values("label")
    live_pairs = set()
    for row, parent in enumerate(t3.column_values("parent_id")):
        if parent in t2_rows:
            grandparent = t2_parent[t2_rows[parent]]
            if grandparent in t1_rows:
                live_pairs.add((t3_label[row], t1_label[t1_rows[grandparent]]))
    t1_labels = sorted(set(t1_label))
    return dead, sorted(live_pairs), t1_labels


def _build_specs(dead, live_pairs, t1_labels):
    """Five dead specs and two live specs, eight two-cell samples each."""
    specs = []
    for start in range(0, 40, 8):
        spec = MappingSpec(num_columns=3)
        for offset, label in enumerate(dead[start:start + 8]):
            spec.add_sample_cells([
                parse_value_constraint(label),
                parse_value_constraint(
                    t1_labels[(start + 3 * offset) % len(t1_labels)]
                ),
                None,
            ])
        specs.append(spec)
    for start in (0, 8):
        spec = MappingSpec(num_columns=3)
        for t3_label, t1_label in live_pairs[start:start + 8]:
            spec.add_sample_cells([
                parse_value_constraint(t3_label),
                parse_value_constraint(t1_label),
                None,
            ])
        specs.append(spec)
    return specs


@pytest.fixture(scope="module")
def skewed_db():
    """Zipf-skewed chain with dangling FKs on the numpy kernel backend."""
    return generate_synthetic_database(
        num_tables=4,
        rows_per_table=_ROWS,
        topology="chain",
        seed=_SEED,
        skew=_SKEW,
        dangling_fk_fraction=_DANGLING,
        backend=make_backend("numpy"),
    )


@pytest.fixture(scope="module")
def skewed_base(skewed_db):
    """One preprocessing pass (index, catalog+sketches, models) shared
    by every per-mode engine."""
    return Prism(skewed_db, limits=_LIMITS)


@pytest.fixture(scope="module")
def sketch_specs(skewed_db):
    dead, live_pairs, t1_labels = _label_pools(skewed_db, _ROWS)
    return _build_specs(dead, live_pairs, t1_labels)


@pytest.fixture(scope="module")
def probe_batch(skewed_db):
    """One shared-structure batch: dead T3 labels x T1 labels."""
    dead, __, t1_labels = _label_pools(skewed_db, _ROWS)
    foreign_keys = list(skewed_db.foreign_keys)
    fk_t3_t2 = next(fk for fk in foreign_keys if fk.child_table == "T3")
    fk_t2_t1 = next(fk for fk in foreign_keys if fk.child_table == "T2")
    query = ProjectJoinQuery(
        (
            ColumnRef("T3", "label"),
            ColumnRef("T2", "label"),
            ColumnRef("T1", "label"),
        ),
        (fk_t3_t2, fk_t2_t1),
    )
    t3_constraints = [parse_value_constraint(label) for label in dead[:4]]
    t1_constraints = [parse_value_constraint(label) for label in t1_labels[:8]]
    return [
        BatchProbe(
            query=query,
            cell_predicates={0: a.matches, 2: b.matches},
            predicate_tags={0: a, 2: b},
            cache_key=None,
        )
        for a in t3_constraints
        for b in t1_constraints
    ]


def _fresh_engine(base: Prism, sketches: bool) -> Prism:
    """A cold-cache engine over the shared artifacts (cheap to build)."""
    return Prism(
        base.database,
        limits=_LIMITS,
        use_sketches=sketches,
        batch_validation=True,
        train_bayesian=False,
        index=base.index,
        catalog=base.catalog,
        schema_graph=base.schema_graph,
        models=base.models,
    )


def _run_discovery(base: Prism, specs, sketches: bool):
    engine = _fresh_engine(base, sketches)
    return [engine.discover(spec, **_BUDGET) for spec in specs]


def _discovery_totals(results) -> dict:
    return {
        "joins_performed": sum(r.stats.joins_performed for r in results),
        "bloom_rejections": sum(r.stats.bloom_rejections for r in results),
        "sketch_estimates_used": sum(
            r.stats.sketch_estimates_used for r in results
        ),
        "num_queries": sum(r.num_queries for r in results),
        "queries": [r.sql() for r in results],
    }


def _run_probe_batch(base: Prism, probes, sketches: bool) -> dict:
    executor = _fresh_engine(base, sketches).executor
    executor.exists_batch(probes)  # warm plan, join indexes, edge kernels
    timings = []
    outcomes = None
    for __ in range(9):
        started = time.perf_counter()
        outcomes = executor.exists_batch(probes)
        timings.append(time.perf_counter() - started)
    return {
        "seconds": statistics.median(timings),
        "outcomes": outcomes,
        "joins_performed": executor.stats.joins_performed,
        "bloom_rejections": executor.stats.bloom_rejections,
    }


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", _MODES)
def test_sketch_discovery(benchmark, skewed_base, sketch_specs, mode):
    sketches = mode == "sketches"
    results = benchmark.pedantic(
        _run_discovery,
        args=(skewed_base, sketch_specs, sketches),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    _DISCOVERY[mode] = {
        "totals": _discovery_totals(results),
        "seconds": benchmark.stats.stats.min,
    }
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["joins_performed"] = _DISCOVERY[mode]["totals"][
        "joins_performed"
    ]


@pytest.mark.parametrize("mode", _MODES)
def test_sketch_probe_batch(benchmark, skewed_base, probe_batch, mode):
    sketches = mode == "sketches"
    measured = benchmark.pedantic(
        _run_probe_batch,
        args=(skewed_base, probe_batch, sketches),
        rounds=1,
        iterations=1,
    )
    _PROBES[mode] = measured
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["batch_seconds"] = measured["seconds"]


def test_sketch_stats_report(benchmark, skewed_base, sketch_specs, probe_batch):
    """Join both modes into the sketch report and assert the wins."""
    for mode in _MODES:
        sketches = mode == "sketches"
        if mode not in _DISCOVERY:
            started = time.perf_counter()
            results = _run_discovery(skewed_base, sketch_specs, sketches)
            _DISCOVERY[mode] = {
                "totals": _discovery_totals(results),
                "seconds": time.perf_counter() - started,
            }
        if mode not in _PROBES:
            _PROBES[mode] = _run_probe_batch(skewed_base, probe_batch, sketches)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sketched = _DISCOVERY["sketches"]
    raw = _DISCOVERY["raw"]

    # Bit-for-bit identical discovery output across estimators.
    assert sketched["totals"]["queries"] == raw["totals"]["queries"]
    assert _PROBES["sketches"]["outcomes"] == _PROBES["raw"]["outcomes"]

    join_ratio = raw["totals"]["joins_performed"] / max(
        sketched["totals"]["joins_performed"], 1
    )
    probe_speedup = _PROBES["raw"]["seconds"] / _PROBES["sketches"]["seconds"]

    discovery_rows = [
        {
            "mode": mode,
            "seconds": round(_DISCOVERY[mode]["seconds"], 4),
            "joins_performed": _DISCOVERY[mode]["totals"]["joins_performed"],
            "bloom_rejections": _DISCOVERY[mode]["totals"]["bloom_rejections"],
            "sketch_estimates_used": _DISCOVERY[mode]["totals"][
                "sketch_estimates_used"
            ],
            "num_queries": _DISCOVERY[mode]["totals"]["num_queries"],
        }
        for mode in _MODES
    ]
    probe_rows = [
        {
            "mode": mode,
            "batch_ms": round(_PROBES[mode]["seconds"] * 1e3, 3),
            "joins_performed": _PROBES[mode]["joins_performed"],
            "bloom_rejections": _PROBES[mode]["bloom_rejections"],
        }
        for mode in _MODES
    ]
    discovery_table = format_table(
        discovery_rows,
        columns=["mode", "seconds", "joins_performed", "bloom_rejections",
                 "sketch_estimates_used", "num_queries"],
        title="Sketch statistics: discovery on a Zipf-skewed chain "
              f"(4x{_ROWS}-row tables, skew={_SKEW}, "
              f"dangling={_DANGLING}, numpy backend)",
    )
    probe_table = format_table(
        probe_rows,
        columns=["mode", "batch_ms", "joins_performed", "bloom_rejections"],
        title="Bloom pre-filtered exists_batch "
              f"(one {len(probe_batch)}-probe batch over T3-T2-T1, "
              "median of 9 passes)",
    )
    summary_table = format_table(
        [{
            "join_reduction": f"{join_ratio:.1f}x",
            "probe_batch_speedup": f"{probe_speedup:.2f}x",
            "identical_results": True,
        }],
        columns=["join_reduction", "probe_batch_speedup", "identical_results"],
        title="Sketch summary (target: >=2x fewer joins built, "
              "wall-clock win on the batched probe pass)",
    )
    write_report(
        "sketch_stats",
        discovery_table + "\n\n" + probe_table + "\n\n" + summary_table,
    )

    # The sketch path must actually have run, and must win.
    assert sketched["totals"]["bloom_rejections"] > 0
    assert sketched["totals"]["sketch_estimates_used"] > 0
    assert raw["totals"]["bloom_rejections"] == 0
    assert join_ratio >= 2.0, (
        f"sketches only reduced joins_performed by {join_ratio:.2f}x"
    )
    assert probe_speedup > 1.0, (
        f"Bloom pre-filtering was not a wall-clock win ({probe_speedup:.2f}x)"
    )


# ----------------------------------------------------------------------
# CI smoke: 4k-row tables on the process-default backend, sub-second
# discovery, no wall-clock assertion (timing-free, both backends).
# ----------------------------------------------------------------------
_SMOKE_ROWS = 4_000


def test_sketch_stats_smoke(benchmark):
    """Sketch on/off parity plus Bloom pruning on a small skewed chain."""
    database = generate_synthetic_database(
        num_tables=3,
        rows_per_table=_SMOKE_ROWS,
        topology="chain",
        seed=_SEED,
        skew=_SKEW,
        dangling_fk_fraction=_DANGLING,
        backend=default_backend(),
    )
    t2 = database.table("T2")
    by_label = defaultdict(list)
    for label, parent in zip(
        t2.column_values("label"), t2.column_values("parent_id")
    ):
        by_label[label].append(parent)
    dead = sorted(
        label
        for label, parents in by_label.items()
        if all(parent >= _SMOKE_ROWS for parent in parents)
    )
    spec = MappingSpec(num_columns=2)
    for label in dead[:6]:
        spec.add_sample_cells([parse_value_constraint(label), None])
    base = Prism(database, limits=_LIMITS)

    def run():
        outcomes = {}
        for sketches in (True, False):
            results = _run_discovery(base, [spec], sketches)
            outcomes[sketches] = _discovery_totals(results)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    sketched, raw = outcomes[True], outcomes[False]
    assert sketched["queries"] == raw["queries"]
    assert sketched["bloom_rejections"] > 0
    assert raw["bloom_rejections"] == 0
    assert sketched["joins_performed"] < raw["joins_performed"]
