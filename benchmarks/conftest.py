"""Shared fixtures and report plumbing for the benchmark harness.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (E1-E6 plus ablations and micro-benchmarks).  Besides
the pytest-benchmark timings, each experiment writes the table it
reproduces to ``benchmarks/reports/<experiment>.txt`` so the numbers can be
compared against EXPERIMENTS.md without re-running anything.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import load_mondial
from repro.discovery import GenerationLimits, Prism
from repro.evaluation.experiments import build_cases

REPORT_DIR = Path(__file__).parent / "reports"

# Bounds keeping every individual benchmark run in the low seconds while
# still exercising hundreds of candidates and filters.
BENCH_LIMITS = GenerationLimits(
    max_candidates=200,
    max_assignments=400,
    max_trees_per_assignment=6,
)


def write_report(name: str, text: str) -> Path:
    """Write an experiment's table to benchmarks/reports/<name>.txt."""
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def mondial_db():
    """The synthetic Mondial database (the paper's evaluation source)."""
    return load_mondial()


@pytest.fixture(scope="session")
def engine(mondial_db):
    """A preprocessed Prism engine over Mondial with benchmark bounds."""
    return Prism(mondial_db, limits=BENCH_LIMITS)


@pytest.fixture(scope="session")
def cases(mondial_db):
    """Ground-truth workload cases synthesised from Mondial (§2.4)."""
    return build_cases(mondial_db, count=3, num_columns=3, num_tables=2, seed=17)
