"""Use Prism on your own data: build a database in code or load it from CSV.

Demonstrates the data-ingestion path a downstream user would take: define
tables and foreign keys programmatically, save/load the directory-of-CSVs
format, and run a discovery round against it.  Run with::

    python examples/custom_database.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Column, Database, DataType, MappingSpec, Prism
from repro.constraints import ExactValue, Range
from repro.dataset import load_database, save_database


def build_library_database() -> Database:
    """A small lending-library schema: Author ← Book ← Loan → Member."""
    database = Database("library")
    author = database.create_table(
        "Author",
        [Column("Name", DataType.TEXT, primary_key=True),
         Column("Country", DataType.TEXT)],
    )
    book = database.create_table(
        "Book",
        [
            Column("Isbn", DataType.TEXT, primary_key=True),
            Column("Title", DataType.TEXT),
            Column("Author", DataType.TEXT),
            Column("Year", DataType.INT),
            Column("Pages", DataType.INT),
        ],
    )
    member = database.create_table(
        "Member",
        [Column("Id", DataType.INT, primary_key=True),
         Column("Name", DataType.TEXT)],
    )
    loan = database.create_table(
        "Loan",
        [Column("Isbn", DataType.TEXT), Column("MemberId", DataType.INT),
         Column("Days", DataType.INT)],
    )

    author.insert_many(
        [("Ursula Le Guin", "United States"), ("Italo Calvino", "Italy"),
         ("Stanislaw Lem", "Poland")]
    )
    book.insert_many(
        [
            ("978-0441478125", "The Left Hand of Darkness", "Ursula Le Guin", 1969, 304),
            ("978-0156439619", "Invisible Cities", "Italo Calvino", 1972, 165),
            ("978-0156027588", "Solaris", "Stanislaw Lem", 1961, 204),
            ("978-0441007318", "The Dispossessed", "Ursula Le Guin", 1974, 387),
        ]
    )
    member.insert_many([(1, "Ada"), (2, "Grace"), (3, "Edsger")])
    loan.insert_many(
        [("978-0441478125", 1, 21), ("978-0156027588", 2, 14),
         ("978-0156439619", 3, 7), ("978-0441007318", 1, 28)]
    )

    database.link("Book.Author", "Author.Name")
    database.link("Loan.Isbn", "Book.Isbn")
    database.link("Loan.MemberId", "Member.Id")
    return database


def main() -> None:
    database = build_library_database()

    # Round-trip through the CSV directory format a user would drop in place.
    with tempfile.TemporaryDirectory() as directory:
        manifest = save_database(database, Path(directory))
        print(f"saved {database.name} to {manifest.parent}")
        database = load_database(Path(directory))
        print(f"reloaded {database.name}: {database.summary()}")

    prism = Prism(database)

    # Which member borrowed a Le Guin novel for roughly three weeks?
    spec = MappingSpec(3)
    spec.add_sample_cells(
        [ExactValue("Ursula Le Guin"), ExactValue("Ada"), Range(14, 30)]
    )
    result = prism.discover(spec)
    print(f"\n{result.num_queries} satisfying mappings for "
          "(author, member, loan length):")
    for sql in result.sql():
        print("  ", sql)


if __name__ == "__main__":
    main()
