"""Quickstart: discover a schema mapping from multiresolution constraints.

Reproduces the paper's motivating example (§1): a user wants a target table
(State, Lake Name, Area) from the Mondial database but only knows that
Lake Tahoe borders California or Nevada and that areas are non-negative
decimals.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MappingSpec, Prism, load_mondial
from repro.constraints import parse_metadata_constraint, parse_value_constraint


def main() -> None:
    # 1. Load the source database and preprocess it (index, catalog,
    #    schema graph, Bayesian models).
    database = load_mondial()
    prism = Prism(database)
    print(f"source database: {database.name} "
          f"({len(database.table_names)} tables, {database.total_rows} rows)")

    # 2. Describe the desired target schema with multiresolution constraints.
    spec = MappingSpec(num_columns=3)
    spec.add_sample_cells(
        [
            parse_value_constraint("California || Nevada"),   # medium resolution
            parse_value_constraint("Lake Tahoe"),              # high resolution
            None,                                              # unknown value
        ]
    )
    spec.set_metadata(
        2, parse_metadata_constraint("DataType=='decimal' AND MinValue>=0")
    )  # low resolution
    print("\nconstraints:")
    print(spec.describe())

    # 3. Search for satisfying Project-Join queries (60 s interactive limit).
    result = prism.discover(spec)
    print(
        f"\n{result.num_queries} satisfying schema mapping queries "
        f"({result.stats.num_candidates} candidates, "
        f"{result.stats.validations} filter validations, "
        f"{result.stats.elapsed_seconds:.2f}s)"
    )
    for index, sql in enumerate(result.sql()[:5], start=1):
        print(f"  [{index}] {sql}")
    if result.num_queries > 5:
        print(f"  ... and {result.num_queries - 5} more")


if __name__ == "__main__":
    main()
