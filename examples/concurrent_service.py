"""Concurrent serving: many mixed-database requests, one preprocessing pass.

The paper's demo is an interactive multi-user system (§2.2).  This example
drives N concurrent discovery requests across all three bundled databases
through the :class:`~repro.api.DiscoveryService` — first over the
GIL-bound thread pool, then over process shards, where each worker
process owns its databases outright and requests cross the boundary as
versioned JSON messages.  The artifact store preprocesses each database
once per owning process — every other request warm-starts from the
shared, immutable bundle — and the service metrics show the in-flight
accounting, latency distribution and (per-shard) cache counters.
Run with::

    python examples/concurrent_service.py
"""

from __future__ import annotations

from repro.api import ArtifactStore, DiscoveryService, demo_requests
from repro.discovery.candidates import GenerationLimits

ROUNDS = 4          # 4 rounds x 3 databases = 12 concurrent requests
WORKERS = 4


def serve(shard_mode: str) -> None:
    store = ArtifactStore()
    service = DiscoveryService(
        store=store,
        workers=WORKERS,
        queue_size=32,
        shard_mode=shard_mode,
        limits=GenerationLimits(max_candidates=200, max_assignments=400),
    )
    requests = demo_requests(rounds=ROUNDS)
    print(
        f"\n=== shard_mode={shard_mode!r} ===\n"
        f"submitting {len(requests)} requests across "
        f"{len({r.database for r in requests})} databases "
        f"to a {WORKERS}-worker service"
    )

    with service:
        # Submit everything up front so the executor genuinely runs
        # concurrently, then collect the responses.
        tickets = [service.submit(request, block=True) for request in requests]
        responses = [ticket.result() for ticket in tickets]
        metrics = service.metrics()

    print("responses:")
    for response in responses:
        print(
            f"  [{response.request_id}] {response.database}: "
            f"{response.status}, {response.num_queries} satisfying queries "
            f"(exec {response.execution_seconds * 1000:.0f} ms, "
            f"queued {response.queued_seconds * 1000:.0f} ms)"
        )

    artifacts = metrics.artifacts
    print(
        f"artifact store: {artifacts['builds']} builds for "
        f"{len(artifacts['builds_by_database'])} databases, "
        f"{artifacts['hits']} cache hits"
    )
    if metrics.shards:
        breakdown = ", ".join(
            f"shard {shard_id}: {info['served']} served"
            for shard_id, info in sorted(metrics.shards.items())
        )
        print(f"shards: {breakdown}")
    print(
        f"service: {metrics.completed} completed, {metrics.ok} ok, "
        f"latency mean {metrics.latency_mean_seconds * 1000:.0f} ms / "
        f"p95 {metrics.latency_p95_seconds * 1000:.0f} ms"
    )


def main() -> None:
    serve("thread")
    serve("process")


if __name__ == "__main__":
    main()
