"""Domain example: roster queries on the NBA database, via the CLI session.

Builds a (player, team, city) target schema with a mix of exact values and
disjunctions, then compares how many filter validations each scheduling
policy needs for the same search.  Run with::

    python examples/nba_roster.py
"""

from __future__ import annotations

from repro import GenerationLimits, MappingSpec, Prism, load_nba
from repro.constraints import ExactValue, OneOf


def main() -> None:
    database = load_nba()
    prism = Prism(database, limits=GenerationLimits(max_candidates=300))
    print(f"source database: nba ({database.total_rows} rows)")

    spec = MappingSpec(3)
    spec.add_sample_cells(
        [
            ExactValue("LeBron James"),
            ExactValue("Lakers"),
            OneOf(["Los Angeles", "San Francisco"]),
        ]
    )
    print("\nconstraints:")
    print(spec.describe())

    result = prism.discover(spec)
    print(f"\n{result.num_queries} satisfying mappings:")
    for sql in result.sql()[:5]:
        print("  ", sql)

    print("\nscheduler comparison on this search (filter validations):")
    for scheduler in ("naive", "filter", "bayesian", "optimal"):
        run = prism.discover(spec, scheduler=scheduler)
        print(
            f"  {scheduler:>8}: {run.stats.validations:3d} validations, "
            f"{run.stats.implied_outcomes:3d} implied for free, "
            f"{run.num_queries} queries, {run.stats.elapsed_seconds:.3f}s"
        )


if __name__ == "__main__":
    main()
