"""Incremental artifact maintenance: append rows, refresh, re-discover.

Preprocessing (inverted index, metadata catalog, schema graph, Bayesian
models) is built once per database state.  When the database then grows,
:meth:`~repro.service.ArtifactStore.refresh` folds the appended rows into
the cached bundle instead of rebuilding it — so discovery over a live,
mutating database keeps its interactive budget.  This example inserts a
new NBA player, refreshes, and shows the new row being discovered with
zero rebuilds; it then drops a table to demonstrate the counted fallback
to a full rebuild.  See ``docs/incremental.md``.  Run with::

    python examples/incremental_updates.py
"""

from __future__ import annotations

from repro import MappingSpec, Prism, load_nba
from repro.constraints import parse_value_constraint
from repro.api import ArtifactStore


def _discover(bundle, keyword: str):
    spec = MappingSpec(num_columns=2)
    spec.add_sample_cells([parse_value_constraint(keyword), None])
    return Prism.from_artifacts(bundle).discover(spec)


def main() -> None:
    database = load_nba()
    store = ArtifactStore()

    bundle = store.get(database)  # the one cold build in this example
    print(f"cold build: key={bundle.key.data_version}")

    result = _discover(bundle, "Fiona Birch")
    print(f"before insert: {result.num_queries} satisfying queries "
          "for 'Fiona Birch' (she is not in the roster yet)")

    # The roster grows — one append, no rebuild.
    database.table("Player").insert(
        (901, "Fiona Birch", "Lakers", "PG", 178, 19.5)
    )
    bundle = store.refresh(database)
    stats = store.stats
    print(f"after refresh: builds={stats.builds}, refreshes={stats.refreshes}, "
          f"delta_rows_applied={stats.delta_rows_applied}")

    result = _discover(bundle, "Fiona Birch")
    print(f"after refresh: {result.num_queries} satisfying queries "
          "for 'Fiona Birch'")
    for sql in result.sql()[:3]:
        print(f"  {sql}")

    # A schema change cannot be expressed as an append delta: refresh
    # falls back to a counted full rebuild and still serves correctly.
    database.drop_table("Game")
    bundle = store.refresh(database)
    stats = store.stats
    print(f"after drop_table: rebuild_fallbacks={stats.rebuild_fallbacks} "
          f"({dict(stats.fallback_reasons)}), builds={stats.builds}")


if __name__ == "__main__":
    main()
