"""Reproduce the §2.4 evaluation tables from the command line.

Synthesises ground-truth cases from Mondial, derives constraint specs at
every looseness level, and prints the E1/E2/E3 tables (discovery time,
number of satisfying queries, filter validations per scheduler with gap
reductions).  Run with::

    python examples/scheduler_comparison.py [num_cases]
"""

from __future__ import annotations

import sys

from repro import GenerationLimits, Prism, load_mondial
from repro.evaluation import (
    aggregate_resolution_sweep,
    aggregate_scheduler_comparison,
    build_cases,
    format_table,
    run_resolution_sweep,
    run_scheduler_comparison,
)
from repro.workloads import ResolutionLevel


def main() -> None:
    num_cases = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    database = load_mondial()
    limits = GenerationLimits(max_candidates=200, max_assignments=400)
    engine = Prism(database, limits=limits)
    cases = build_cases(database, count=num_cases, num_columns=3, num_tables=2,
                        seed=17)
    print(f"{len(cases)} synthesised test cases from Mondial "
          f"(3 target columns, 2-table ground truths)\n")

    sweep_rows = run_resolution_sweep(database, cases, limits=limits, engine=engine)
    print(format_table(
        aggregate_resolution_sweep(sweep_rows),
        columns=["level", "mean_elapsed_seconds", "mean_num_queries",
                 "mean_validations", "ground_truth_rate"],
        title="E1/E2: discovery time and #satisfying queries vs constraint looseness",
    ))

    comparison_rows = run_scheduler_comparison(
        database, cases, level=ResolutionLevel.MIXED, limits=limits, engine=engine
    )
    print()
    print(format_table(
        comparison_rows,
        columns=["case", "validations_filter", "validations_bayesian",
                 "validations_optimal", "gap_reduction"],
        title="E3: filter validations per scheduler (mixed-resolution constraints)",
    ))
    summary = aggregate_scheduler_comparison(comparison_rows)
    print(
        f"\nmean gap reduction vs Filter baseline: {summary['mean_gap_reduction']:.0%} "
        f"(max {summary['max_gap_reduction']:.0%}; "
        "paper reports ~30% average, up to ~70%)"
    )


if __name__ == "__main__":
    main()
