"""The full §3 demo walk-through on Mondial, including query explanation.

Drives the same Configuration → Description → Result workflow a demo
attendee would follow in the web UI, via :class:`repro.PrismSession`, and
prints the explanation graph (the paper's Figure 4c) of the selected query
both as ASCII and as Graphviz DOT.  Run with::

    python examples/mondial_lakes.py
"""

from __future__ import annotations

from repro import Executor, PrismSession, load_mondial

TARGET_SQL = (
    "SELECT geo_lake.Province, Lake.Name, Lake.Area "
    "FROM Lake, geo_lake WHERE geo_lake.Lake = Lake.Name"
)


def main() -> None:
    session = PrismSession()

    print("== Configuration section ==")
    session.configure("mondial", num_columns=3, num_samples=1, use_metadata=True)
    print("source database: mondial, 3 target columns, 1 sample constraint")

    print("\n== Description section ==")
    session.set_sample_cell(0, 0, "California || Nevada")
    session.set_sample_cell(0, 1, "Lake Tahoe")
    session.set_metadata_constraint(2, "DataType=='decimal' AND MinValue>=0")
    print(session.build_spec().describe())

    print("\n== Start Searching! ==")
    result = session.search()
    print(
        f"{result.num_queries} satisfying queries in "
        f"{result.stats.elapsed_seconds:.2f}s "
        f"({result.stats.validations} filter validations)"
    )

    sqls = result.sql()
    selected = sqls.index(TARGET_SQL) if TARGET_SQL in sqls else 0
    session.select_query(selected)
    print(f"\n== Result section: selected query #{selected + 1} ==")
    print(session.sql())

    print("\n-- explanation graph (ASCII) --")
    print(session.explain(fmt="ascii"))

    print("\n-- explanation graph (Graphviz DOT, paste into dot -Tpng) --")
    print(session.explain(fmt="dot"))

    print("\n-- result preview --")
    executor = Executor(load_mondial())
    for row in executor.execute(session.selected_query, limit=5):
        print("  ", row)


if __name__ == "__main__":
    main()
