"""Domain example: mapping actors to their movies on the IMDB database.

Shows how different constraint resolutions describe the same target schema
(person name, movie title, rating) and how metadata constraints pin an
otherwise unknown numeric column to the movie rating.  Run with::

    python examples/imdb_actors.py
"""

from __future__ import annotations

from repro import Executor, GenerationLimits, MappingSpec, Prism, load_imdb
from repro.constraints import (
    ExactValue,
    OneOf,
    Range,
    parse_metadata_constraint,
)


def main() -> None:
    database = load_imdb()
    prism = Prism(database, limits=GenerationLimits(max_candidates=300))
    executor = Executor(database)
    print(f"source database: imdb ({database.total_rows} rows)")

    # ------------------------------------------------------------------
    # Round 1: high resolution — the user knows an exact (actor, movie) pair.
    # ------------------------------------------------------------------
    exact_spec = MappingSpec(2)
    exact_spec.add_sample_cells(
        [ExactValue("Leonardo DiCaprio"), ExactValue("Inception")]
    )
    exact_result = prism.discover(exact_spec)
    print(f"\n[high resolution] {exact_result.num_queries} mappings for "
          "(actor, movie title):")
    for sql in exact_result.sql()[:3]:
        print("  ", sql)

    # ------------------------------------------------------------------
    # Round 2: medium resolution — the user is unsure which Nolan film it
    # was and only remembers the decade.
    # ------------------------------------------------------------------
    medium_spec = MappingSpec(3)
    medium_spec.add_sample_cells(
        [
            ExactValue("Christopher Nolan"),
            OneOf(["Inception", "Interstellar", "The Prestige"]),
            Range(2000, 2015),
        ]
    )
    medium_result = prism.discover(medium_spec)
    print(f"\n[medium resolution] {medium_result.num_queries} mappings for "
          "(director, movie, year):")
    for sql in medium_result.sql()[:3]:
        print("  ", sql)

    # ------------------------------------------------------------------
    # Round 3: low resolution — the third column is only known to be a
    # rating-like decimal bounded by 10.
    # ------------------------------------------------------------------
    low_spec = MappingSpec(2)
    low_spec.add_sample_cells([ExactValue("The Dark Knight"), None])
    low_spec.set_metadata(
        1, parse_metadata_constraint("DataType=='decimal' AND MaxValue<=10")
    )
    low_result = prism.discover(low_spec)
    print(f"\n[low resolution] {low_result.num_queries} mappings for "
          "(movie, rating-like column):")
    for query in low_result.queries[:3]:
        print("  ", query)
        for row in executor.execute(query, limit=2):
            print("      e.g.", row)


if __name__ == "__main__":
    main()
