"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where the
PEP 517 build path is unavailable (no ``wheel`` package and no network to
fetch an isolated build backend).  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
